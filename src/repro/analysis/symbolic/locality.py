"""Weighted LRU / WS analyzers over the collapsed surrogate.

Both classes reproduce the exact analyzers' integers from only the kept
references of a :class:`~repro.analysis.symbolic.collapse.Surrogate`:

* **LRU** — the kept string preserves every stack distance.  A kept
  reference's true previous occurrence is itself kept (a run's last
  copy survives collapse), and any omitted references inside the reuse
  window repeat pages that the window's surviving copies also contain,
  so the distinct count between occurrences is unchanged.  Omitted
  copies share their copy-1 slot's distance and distinct count (the
  reuse window of every interior copy is a period-shifted image of
  copy-1's), which is exactly what the copy-1 weights encode.
* **WS** — faults, working-set sizes and the fault-weighted space-time
  sum all have closed forms over the patched backward/forward gaps.
  The only subtle term is ``Σ_s faults_before(end_s)`` where
  ``end_s = s + min(cap_s, τ)``: for ends that land inside a collapsed
  run it is evaluated against the run's *arithmetic* fault layout
  (``q`` whole copies plus a partial prefix), never by expansion.

Every public method mirrors :class:`~repro.vm.analyzers.LRUSweep` /
:class:`~repro.vm.analyzers.WSSweep` — same names, same arguments,
same tie-breaking, bit-identical results (asserted by the
``symbolic-*`` oracle battery and the property suite).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from repro.analysis.symbolic.collapse import Surrogate
from repro.analysis.symbolic.runtrace import RunTrace
from repro.vm.analyzers import _DENSE_CURVE_LIMIT, LRUSweep
from repro.vm.metrics import FAULT_SERVICE_REFERENCES, SimulationResult

SourceLike = Union[RunTrace, Surrogate]

__all__ = ["SymbolicLRU", "SymbolicWS"]


def _as_surrogate(source: SourceLike) -> Surrogate:
    if isinstance(source, RunTrace):
        return Surrogate(source.trace.pages, source.runs)
    return source


class SymbolicLRU:
    """All-partition-sizes LRU analysis from a run-structured trace."""

    def __init__(
        self,
        source: SourceLike,
        program: str = "?",
        fault_service: int = FAULT_SERVICE_REFERENCES,
        inner: Optional[LRUSweep] = None,
    ):
        if isinstance(source, RunTrace):
            program = source.trace.program_name
        self.program = program
        self.fault_service = fault_service
        s = _as_surrogate(source)
        self.surrogate = s
        self.n = int(s.n_orig)
        if inner is None:
            inner = LRUSweep(
                s.kept_pages, program=program, fault_service=fault_service
            )
        #: true stack distance / distinct-so-far of each kept reference
        self._distances = inner._distances
        self._distinct = inner._distinct
        self._weights = s.weights
        self.max_useful_frames = inner.max_useful_frames
        self._frame_stats_cache = None

    # -- point queries -------------------------------------------------------

    def faults(self, frames: int) -> int:
        if frames < 1:
            raise ValueError("frames must be >= 1")
        return int(self._weights[self._distances > frames].sum())

    def mem(self, frames: int) -> float:
        if frames < 1:
            raise ValueError("frames must be >= 1")
        if not self.n:
            return 0.0
        resident = np.minimum(self._distinct, frames)
        return int((resident * self._weights).sum()) / self.n

    def space_time(self, frames: int) -> float:
        if frames < 1:
            raise ValueError("frames must be >= 1")
        resident = np.minimum(self._distinct, frames) * self._weights
        fault_mask = self._distances > frames
        return float(resident.sum() + self.fault_service * resident[fault_mask].sum())

    def lifetime(self, frames: int) -> float:
        faults = self.faults(frames)
        if faults == 0:
            return float("inf")
        return self.n / faults

    def result(self, frames: int) -> SimulationResult:
        return SimulationResult(
            policy="LRU",
            program=self.program,
            page_faults=self.faults(frames),
            references=self.n,
            mem_average=self.mem(frames),
            space_time=self.space_time(frames),
            parameter=frames,
            fault_service=self.fault_service,
        )

    # -- whole-curve sweep ---------------------------------------------------

    def _frame_stats(self):
        """Weighted twin of ``LRUSweep._frame_stats`` (same histogram
        construction, kept references carrying their run weights)."""
        if self._frame_stats_cache is not None:
            return self._frame_stats_cache
        m = len(self._distances)
        v = max(self.max_useful_frames, 1)
        if m == 0 or v > _DENSE_CURVE_LIMIT:
            faults = np.array([self.faults(f) for f in range(1, v + 1)])
            mem_sums = np.array(
                [
                    int((np.minimum(self._distinct, f) * self._weights).sum())
                    for f in range(1, v + 1)
                ]
            )
            sts = np.array([self.space_time(f) for f in range(1, v + 1)])
            self._frame_stats_cache = (faults, mem_sums, sts)
            return self._frame_stats_cache
        d = np.minimum(self._distances, v + 1)
        k = self._distinct
        hist = (
            np.bincount(
                (d - 1) * v + (k - 1),
                weights=self._weights.astype(np.float64),
                minlength=(v + 1) * v,
            )
            .astype(np.int64)
            .reshape(v + 1, v)
        )
        m_col = np.arange(1, v + 1)[:, None]
        k_row = np.arange(1, v + 1)[None, :]
        min_mk = np.minimum(m_col, k_row)
        d_counts = hist.sum(axis=1)
        faults = self.n - np.cumsum(d_counts)[:v]
        k_counts = hist.sum(axis=0)
        mem_sums = min_mk @ k_counts
        suffix = np.cumsum(hist[::-1], axis=0)[::-1]
        fault_mem = np.einsum("mk,mk->m", suffix[1 : v + 1], min_mk)
        space_times = (mem_sums + self.fault_service * fault_mem).astype(np.float64)
        self._frame_stats_cache = (faults, mem_sums, space_times)
        return self._frame_stats_cache

    def knee_frames(self) -> int:
        if not self.n:
            return 1
        faults, _, _ = self._frame_stats()
        scores = np.where(
            faults == 0,
            (self.n * 10.0) / np.arange(1, len(faults) + 1),
            (self.n / np.maximum(faults, 1)) / np.arange(1, len(faults) + 1),
        )
        return int(np.argmax(scores)) + 1

    def lifetime_curve(self) -> np.ndarray:
        if not self.n:
            return np.empty(0, dtype=np.float64)
        faults, _, _ = self._frame_stats()
        with np.errstate(divide="ignore"):
            return np.where(faults > 0, self.n / np.maximum(faults, 1), np.inf)

    def curve(
        self, frames_values: Optional[Iterable[int]] = None
    ) -> List[SimulationResult]:
        if frames_values is None:
            frames_values = range(1, max(self.max_useful_frames, 1) + 1)
        return [self.result(f) for f in frames_values]

    def min_space_time(self) -> SimulationResult:
        if not self.n:
            return self.result(1)
        _, _, space_times = self._frame_stats()
        return self.result(int(np.argmin(space_times)) + 1)

    def frames_for_mem(self, target_mem: float) -> int:
        if not self.n:
            return 1
        _, mem_sums, _ = self._frame_stats()
        gaps = np.abs(mem_sums / self.n - target_mem)
        return int(np.argmin(gaps)) + 1

    def min_frames_with_faults_at_most(self, max_faults: int) -> Optional[int]:
        faults, _, _ = self._frame_stats()
        if faults[-1] > max_faults:
            return None
        return int(np.argmax(faults <= max_faults)) + 1


class SymbolicWS:
    """All-window-sizes Working Set analysis from a run-structured trace."""

    def __init__(
        self,
        source: SourceLike,
        program: str = "?",
        fault_service: int = FAULT_SERVICE_REFERENCES,
    ):
        if isinstance(source, RunTrace):
            program = source.trace.program_name
        self.program = program
        self.fault_service = fault_service
        s = _as_surrogate(source)
        self.surrogate = s
        self.n = int(s.n_orig)
        self._init_helpers()
        self._cache: Dict[int, SimulationResult] = {}
        self._min_st_cache: Optional[SimulationResult] = None

    def _init_helpers(self) -> None:
        s = self.surrogate
        w = s.weights
        # faults(τ) and Σ(fault positions) by weighted prefix over
        # backward-sorted kept references.  posw folds in the omitted
        # copies of each copy-1 slot: positions p₁+b, …, p₁+Ωb sum to
        # Ω·p₁ + b·Ω(Ω+1)/2 on top of the slot's own weighted position.
        order = np.argsort(s.backward, kind="stable")
        self._sorted_backward = s.backward[order]
        self._wprefix = np.concatenate(([0], np.cumsum(w[order])))
        posw = s.kept_pos * w
        if len(s.c1_kept):
            om = s.r_omega[s.slot_run]
            posw = posw.copy()
            posw[s.c1_kept] += s.r_block[s.slot_run] * (om * (om + 1) // 2)
        self._posw_total = int(posw.sum())
        self._posw_prefix = np.concatenate(([0], np.cumsum(posw[order])))
        # Σ min(cap, τ) by weighted sorted caps.
        cap_order = np.argsort(s.cap, kind="stable")
        self._sorted_cap = s.cap[cap_order]
        self._capw_prefix = np.concatenate(
            ([0], np.cumsum(s.cap[cap_order] * w[cap_order]))
        )
        self._w_cap_prefix = np.concatenate(([0], np.cumsum(w[cap_order])))
        self._pos_maps = None

    def _position_maps(self):
        """Position-indexed twins of every per-τ ``phi`` lookup, shared
        by the whole batch sweep: for each position ``x`` in
        ``[0, n]`` — kept references before ``x``, runs wholly before
        ``x``, and (when ``x`` lands inside a collapsed span) the run
        index plus the precomputed whole-copy quotient ``q``, the
        partial-prefix slot index and the run's first slot index.
        Built lazily — point queries never pay."""
        if self._pos_maps is None:
            s = self.surrogate
            kept32 = s.kept_count.astype(np.int32)
            if not len(s.r_start):
                zeros = np.zeros(self.n + 1, dtype=np.int32)
                self._pos_maps = (kept32, zeros, zeros - 1, zeros, zeros, zeros)
                return self._pos_maps
            grid = np.arange(self.n + 1, dtype=np.int64)
            pos_runhi = np.searchsorted(s.r_ohi, grid, side="right").astype(
                np.int32
            )
            ridx = np.searchsorted(s.r_olo, grid, side="right") - 1
            safe = np.maximum(ridx, 0)
            olo = s.r_olo[safe]
            inside = (ridx >= 0) & (grid > olo) & (grid < s.r_ohi[safe])
            d = grid - olo
            b = s.r_block[safe]
            q = d // b
            off = s.r_c1off[safe]
            self._pos_maps = (
                kept32,
                pos_runhi,
                np.where(inside, safe, -1).astype(np.int32),
                np.where(inside, q, 0).astype(np.int32),
                np.where(inside, off + (d - q * b), 0).astype(np.int32),
                np.where(inside, off, 0).astype(np.int32),
            )
        return self._pos_maps

    # -- closed-form pieces --------------------------------------------------

    def _ws_size_sum(self, tau: int) -> int:
        split = int(np.searchsorted(self._sorted_cap, tau, side="right"))
        return int(self._capw_prefix[split]) + tau * (
            self.n - int(self._w_cap_prefix[split])
        )

    def _weighted_faults(self, tau_eff: int) -> int:
        k0 = int(np.searchsorted(self._sorted_backward, tau_eff, side="right"))
        return self.n - int(self._wprefix[k0])

    def _fault_space(self, tau_eff: int, faults: int) -> int:
        """Σ over all true references s of (#true faults in [s, e_s))
        with ``e_s = s + min(cap_s, τ)`` — the ST fault-space term."""
        s = self.surrogate
        m = len(s.kept_pos)
        if m == 0:
            return 0
        fm = (s.backward > tau_eff).astype(np.int64)
        fcum = np.concatenate(([0], np.cumsum(fm)))
        nr = len(s.r_start)
        if nr:
            fm_c1 = fm[s.c1_kept]
            gc = np.concatenate(([0], np.cumsum(fm_c1)))
            f_r = gc[s.r_c1off + s.r_block] - gc[s.r_c1off]
            full_prefix = np.concatenate(([0], np.cumsum(s.r_omega * f_r)))
        else:
            gc = np.zeros(1, dtype=np.int64)
            f_r = np.zeros(0, dtype=np.int64)
            full_prefix = np.zeros(1, dtype=np.int64)

        def phi(x: np.ndarray) -> np.ndarray:
            """Weighted count of true faults at positions < x."""
            kept = fcum[np.searchsorted(s.kept_pos, x, side="left")]
            if not nr:
                return kept
            full = full_prefix[np.searchsorted(s.r_ohi, x, side="right")]
            ridx = np.searchsorted(s.r_olo, x, side="right") - 1
            safe = np.maximum(ridx, 0)
            inside = (ridx >= 0) & (x > s.r_olo[safe]) & (x < s.r_ohi[safe])
            d = x - s.r_olo[safe]
            b = s.r_block[safe]
            q, rem = d // b, d % b
            off = s.r_c1off[safe]
            part = q * f_r[safe] + gc[off + rem] - gc[off]
            return kept + full + np.where(inside, part, 0)

        ends = s.kept_pos + np.minimum(s.cap, tau_eff)
        total = int(phi(ends).sum())
        if nr and len(s.c1_kept):
            # Omitted copies of slot j end at most 2b−1 past their copy
            # start; faults before those ends decompose into whole runs
            # before O_lo (K+F per copy), whole omitted copies of this
            # run (a triangular multiple of f_r) and one partial prefix.
            run = s.slot_run
            b = s.r_block[run]
            om = s.r_omega[run]
            u = s.slot_j + np.minimum(s.cap[s.c1_kept], tau_eff)
            le = u <= b
            k_part = fcum[s.r_c1ki[run] + b] + full_prefix[run]
            tri = np.where(le, om * (om - 1) // 2, om * (om + 1) // 2)
            off = s.r_c1off[run]
            pf = gc[off + np.where(le, u, u - b)] - gc[off]
            total += int((om * (k_part + pf) + f_r[run] * tri).sum())
        sum_at_starts = (self.n - 1) * faults - (
            self._posw_total - int(self._posw_prefix[
                np.searchsorted(self._sorted_backward, tau_eff, side="right")
            ])
        )
        return total - sum_at_starts

    def _analyze(self, tau: int) -> SimulationResult:
        if tau < 1:
            raise ValueError("tau must be >= 1")
        cached = self._cache.get(tau)
        if cached is not None:
            return cached
        if self.n == 0:
            result = SimulationResult(
                policy="WS",
                program=self.program,
                page_faults=0,
                references=0,
                mem_average=0.0,
                space_time=0.0,
                parameter=tau,
                fault_service=self.fault_service,
            )
            self._cache[tau] = result
            return result
        tau_eff = min(tau, self.n)
        faults = self._weighted_faults(tau_eff)
        ws_sum = self._ws_size_sum(tau_eff)
        fault_space = self._fault_space(tau_eff, faults)
        result = SimulationResult(
            policy="WS",
            program=self.program,
            page_faults=faults,
            references=self.n,
            mem_average=ws_sum / self.n,
            space_time=float(ws_sum + self.fault_service * fault_space),
            parameter=tau,
            fault_service=self.fault_service,
        )
        self._cache[tau] = result
        return result

    # -- point queries -------------------------------------------------------

    def faults(self, tau: int) -> int:
        if tau < 1:
            raise ValueError("tau must be >= 1")
        cached = self._cache.get(tau)
        if cached is not None:
            return cached.page_faults
        if self.n == 0:
            return 0
        return self._weighted_faults(min(tau, self.n))

    def mem(self, tau: int) -> float:
        if tau < 1:
            raise ValueError("tau must be >= 1")
        cached = self._cache.get(tau)
        if cached is not None:
            return cached.mem_average
        if self.n == 0:
            return 0.0
        return self._ws_size_sum(min(tau, self.n)) / self.n

    def space_time(self, tau: int) -> float:
        return self._analyze(tau).space_time

    def result(self, tau: int) -> SimulationResult:
        return self._analyze(tau)

    def lifetime(self, tau: int) -> float:
        faults = self.faults(tau)
        if faults == 0:
            return float("inf")
        return self.n / faults

    def mean_frames(self, tau: int) -> int:
        if not self.n:
            return 1
        return max(1, int(np.ceil(self.mem(tau))))

    # -- sweep helpers -------------------------------------------------------

    def default_taus(self, count: int = 48) -> List[int]:
        n = max(self.n, 2)
        grid = np.unique(np.round(np.geomspace(1, n, num=count)).astype(np.int64))
        return [int(t) for t in grid]

    def curve(self, taus: Optional[Iterable[int]] = None) -> List[SimulationResult]:
        if taus is None:
            taus = self.default_taus()
        return [self.result(t) for t in taus]

    def _st_batch(self, taus_eff: np.ndarray) -> np.ndarray:
        """Space-time for a small batch of (effective) windows at once —
        the weighted twin of ``WSSweep._st_many``'s chunked matrix pass.
        Integer arithmetic throughout, so each row is bit-identical to
        the scalar ``_analyze`` path."""
        s = self.surrogate
        t = len(taus_eff)
        k0 = np.searchsorted(self._sorted_backward, taus_eff, side="right")
        faults = self.n - self._wprefix[k0]
        split = np.searchsorted(self._sorted_cap, taus_eff, side="right")
        ws_sum = self._capw_prefix[split] + taus_eff * (
            self.n - self._w_cap_prefix[split]
        )
        m = len(s.kept_pos)
        rows = np.arange(t)[:, None]
        FM = s.backward[None, :] > taus_eff[:, None]
        FCUM = np.zeros((t, m + 1), dtype=np.int32)
        np.cumsum(FM, axis=1, dtype=np.int32, out=FCUM[:, 1:])
        nr = len(s.r_start)
        kept_count, pos_runhi, pos_run, pos_q, pos_rem, pos_off = (
            self._position_maps()
        )
        if nr:
            c1 = len(s.c1_kept)
            GC = np.zeros((t, c1 + 1), dtype=np.int32)
            np.cumsum(FM[:, s.c1_kept], axis=1, dtype=np.int32, out=GC[:, 1:])
            F_R = GC[:, s.r_c1off + s.r_block] - GC[:, s.r_c1off]
            FULL = np.zeros((t, nr + 1), dtype=np.int32)
            np.cumsum(
                s.r_omega[None, :].astype(np.int32) * F_R,
                axis=1,
                dtype=np.int32,
                out=FULL[:, 1:],
            )
        ends = s.kept_pos[None, :] + np.minimum(s.cap[None, :], taus_eff[:, None])
        phi = FCUM[rows, kept_count[ends]]
        if nr:
            phi = phi + FULL[rows, pos_runhi[ends]]
            run = pos_run[ends]
            safe = np.maximum(run, 0)
            # whole omitted copies of the containing run plus the
            # partial prefix, both pre-resolved per position
            part = pos_q[ends] * F_R[rows, safe]
            part += GC[rows, pos_rem[ends]]
            part -= GC[rows, pos_off[ends]]
            phi = phi + np.where(run >= 0, part, 0)
        total = phi.sum(axis=1, dtype=np.int64)
        if nr and len(s.c1_kept):
            run = s.slot_run
            b1 = s.r_block[run]
            om = s.r_omega[run]
            u = s.slot_j[None, :] + np.minimum(
                s.cap[s.c1_kept][None, :], taus_eff[:, None]
            )
            le = u <= b1[None, :]
            k_part = FCUM[rows, (s.r_c1ki[run] + b1)[None, :]].astype(
                np.int64
            ) + FULL[rows, run[None, :]]
            tri = np.where(le, om * (om - 1) // 2, om * (om + 1) // 2)
            off1 = s.r_c1off[run][None, :]
            pf = GC[rows, off1 + np.where(le, u, u - b1[None, :])] - GC[
                rows, off1
            ]
            total = total + (
                om[None, :] * (k_part + pf)
                + F_R[rows, run[None, :]].astype(np.int64) * tri
            ).sum(axis=1)
        sum_at_starts = (self.n - 1) * faults - (
            self._posw_total - self._posw_prefix[k0]
        )
        fault_space = total - sum_at_starts
        return (ws_sum + self.fault_service * fault_space).astype(np.float64)

    def _st_many(self, taus: np.ndarray) -> np.ndarray:
        taus = np.asarray(taus, dtype=np.int64)
        if self.n == 0 or len(taus) == 0:
            return np.zeros(len(taus), dtype=np.float64)
        out = np.empty(len(taus), dtype=np.float64)
        taus_eff = np.minimum(taus, self.n)
        for i in range(0, len(taus), 16):
            out[i : i + 16] = self._st_batch(taus_eff[i : i + 16])
        return out

    def _st_lower_bounds(self, taus: np.ndarray) -> np.ndarray:
        """Cheap per-τ lower bound on space-time: ``ws_sum + fs·faults``.
        Sound because every fault lies inside its own window —
        ``e_p = p + min(cap_p, τ_eff) > p`` since caps and τ_eff are
        ≥ 1 — so the fault-space term is at least the fault count."""
        taus_eff = np.minimum(taus, self.n)
        k0 = np.searchsorted(self._sorted_backward, taus_eff, side="right")
        faults = self.n - self._wprefix[k0]
        split = np.searchsorted(self._sorted_cap, taus_eff, side="right")
        ws_sum = self._capw_prefix[split] + taus_eff * (
            self.n - self._w_cap_prefix[split]
        )
        return (ws_sum + self.fault_service * faults).astype(np.float64)

    def _pruned_min(
        self, candidates: List[int], threshold: float
    ) -> "tuple[Optional[int], float]":
        """First index achieving the minimal space-time over
        ``candidates``, skipping any candidate whose lower bound
        exceeds the best value seen (or ``threshold``).  Pruned
        candidates satisfy ``st >= lb > thr >= min``, so neither the
        argmin nor first-wins tie-breaking can change."""
        arr = np.asarray(candidates, dtype=np.int64)
        lbs = self._st_lower_bounds(arr)
        taus_eff = np.minimum(arr, self.n)
        seed = int(np.argmin(lbs))
        evaluated = {seed: float(self._st_batch(taus_eff[seed : seed + 1])[0])}
        thr = min(threshold, evaluated[seed])
        best_index: Optional[int] = None
        best_st = np.inf
        for i in range(len(arr)):
            if lbs[i] > thr:
                continue
            st = evaluated.get(i)
            if st is None:
                st = float(self._st_batch(taus_eff[i : i + 1])[0])
            if st < best_st:
                best_index, best_st = i, st
                thr = min(thr, st)
        return best_index, best_st

    def min_space_time(self, taus: Optional[Iterable[int]] = None) -> SimulationResult:
        if taus is None and self._min_st_cache is not None:
            return self._min_st_cache
        candidates = list(taus) if taus is not None else self.default_taus()
        if self.n == 0:
            best = self.result(candidates[0])
            if taus is None:
                self._min_st_cache = best
            return best
        index, _ = self._pruned_min(candidates, np.inf)
        best = self.result(candidates[index])
        tau = int(best.parameter)
        lo = candidates[index - 1] if index > 0 else max(1, tau // 2)
        hi = candidates[index + 1] if index + 1 < len(candidates) else tau * 2
        step = max(1, (hi - lo) // 32)
        refine = list(range(lo, hi + 1, step))
        r_index, r_st = self._pruned_min(refine, best.space_time)
        if r_index is not None and r_st < best.space_time:
            best = self.result(refine[r_index])
        if taus is None:
            self._min_st_cache = best
        return best

    def tau_for_mem(self, target_mem: float) -> int:
        lo, hi = 1, max(self.n, 1)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.mem(mid) < target_mem:
                lo = mid + 1
            else:
                hi = mid
        best = lo
        if lo > 1 and abs(self.mem(lo - 1) - target_mem) < abs(
            self.mem(lo) - target_mem
        ):
            best = lo - 1
        return best

    def min_tau_with_faults_at_most(self, max_faults: int) -> Optional[int]:
        lo, hi = 1, max(self.n, 1)
        if self.faults(hi) > max_faults:
            return None
        while lo < hi:
            mid = (lo + hi) // 2
            if self.faults(mid) <= max_faults:
                hi = mid
            else:
                lo = mid + 1
        return lo
