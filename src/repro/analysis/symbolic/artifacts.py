"""Symbolic (trace-free) per-workload artifacts.

:func:`symbolic_artifacts_for` is the drop-in twin of
:func:`repro.experiments.runner.artifacts_for`: same signature, same
in-process memo and mode-marked disk cache, but the LRU/WS sweeps are
the weighted analyzers over the collapsed run journal and CD replays
walk the structure instead of the full distance array.  Every number
matches the trace-backed artifacts exactly (Table 2 produced either
way is identical); only the time to produce them differs.

Affine coverage is best-effort by construction: a nest the recipe tier
or the binder cannot prove (the static checker flags such subscripts
as **CD301** ``nonaffine-subscript``) is *recovered* by the ordinary
interpreter — the flat trace stays exact, the nest simply contributes
no runs and is analyzed at weight 1.  :meth:`SymbolicArtifacts.coverage`
reports that split (flagged sites, compiled/kept reference counts) so
a fallback-heavy run is visible rather than silently slow.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.locality import LocalityAnalysis, SizingStrategy, analyze_program
from repro.analysis.parameters import PageConfig
from repro.analysis.symbolic.cd import simulate_cd_symbolic
from repro.analysis.symbolic.collapse import Surrogate
from repro.analysis.symbolic.interp import generate_runtrace
from repro.analysis.symbolic.locality import SymbolicLRU, SymbolicWS
from repro.analysis.symbolic.runtrace import Run, RunTrace
from repro.directives import instrument_program
from repro.directives.model import InstrumentationPlan
from repro.experiments.runner import (
    STATS,
    cache_dir,
    quarantine_paths,
    stat_fingerprint,
)
from repro.tracegen import io as trace_io
from repro.vm.analyzers import LRUSweep
from repro.vm.fastsim import cd_fast_applicable, simulate_cd_fast
from repro.vm.metrics import SimulationResult
from repro.vm.policies import CDConfig, CDPolicy
from repro.vm.simulator import simulate
from repro.workloads import get_workload

__all__ = ["SymbolicArtifacts", "symbolic_artifacts_for", "clear_symbolic_cache"]

#: bump when the detector/collapse/cache layout changes — invalidates entries
SYMBOLIC_FORMAT = 2


@dataclass
class SymbolicArtifacts:
    """Everything the experiments need, derived without a full replay."""

    name: str
    analysis: LocalityAnalysis
    plan: InstrumentationPlan
    runtrace: RunTrace
    surrogate: Surrogate = field(repr=False)
    lru: SymbolicLRU = field(repr=False)
    ws: SymbolicWS = field(repr=False)
    gen_stats: Dict[str, int] = field(default_factory=dict, repr=False)

    @property
    def trace(self):
        """The exact flat trace (directives included)."""
        return self.runtrace.trace

    def cd_result(self, config: Optional[CDConfig] = None) -> SimulationResult:
        """CD replay: structure walk when the closed form applies,
        exact fallback otherwise (ceiling / LOCK pinning / a journal
        the walk rejects)."""
        config = config or CDConfig()
        t0 = time.perf_counter()
        try:
            if cd_fast_applicable(self.trace, config):
                try:
                    return simulate_cd_symbolic(
                        self.runtrace,
                        config,
                        surrogate=self.surrogate,
                        kept_distances=self.lru._distances,
                    )
                except ValueError:
                    return simulate_cd_fast(self.trace, config)
            return simulate(self.trace, CDPolicy(config))
        finally:
            STATS.add(
                "simulate", time.perf_counter() - t0, len(self.trace.pages)
            )

    def best_cd_result(
        self, caps: Tuple[Optional[int], ...] = (None, 2, 1)
    ) -> SimulationResult:
        """Minimum-ST CD run across directive-set choices (PI caps) —
        same candidates and tie-breaking as the trace-backed artifacts."""
        candidates = [self.cd_result(CDConfig(pi_cap=cap)) for cap in caps]
        return min(candidates, key=lambda r: r.space_time)

    def coverage(self) -> Dict[str, int]:
        """Affine coverage: CD301-flagged subscript sites versus what
        the symbolic tier compiled/collapsed vs recovered."""
        from repro.staticcheck import lint_program

        flagged = sum(
            1
            for d in lint_program(self.analysis.program, plan=self.plan)
            if d.rule == "CD301"
        )
        report = dict(self.gen_stats)
        report["nonaffine_sites"] = flagged
        return report


_SYM_CACHE: Dict[
    Tuple[str, PageConfig, SizingStrategy, bool], SymbolicArtifacts
] = {}


def _symbolic_cache_key(
    source: str,
    page_config: PageConfig,
    strategy: SizingStrategy,
    with_locks: bool,
) -> str:
    payload = json.dumps(
        {
            "source": source,
            "page_bytes": page_config.page_bytes,
            "word_bytes": page_config.word_bytes,
            "strategy": strategy.value,
            "with_locks": with_locks,
            "format": trace_io.FORMAT_VERSION,
            "mode": "symbolic",
            "symbolic_format": SYMBOLIC_FORMAT,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def _entry_paths(cdir: Path, key: str) -> Tuple[Path, Path]:
    return cdir / f"trace-{key}.npz", cdir / f"runs-{key}.npz"


def _load_entry(
    cdir: Path, key: str
) -> Optional[Tuple[RunTrace, Dict[str, np.ndarray]]]:
    trace_path, runs_path = _entry_paths(cdir, key)
    if not (trace_path.exists() and runs_path.exists()):
        return None
    observed = {
        path: stat_fingerprint(path) for path in (trace_path, runs_path)
    }
    try:
        trace = trace_io.load_trace(trace_path)
        with np.load(runs_path) as arrays:
            runs = [
                Run(int(s), int(b), int(k))
                for s, b, k in zip(
                    arrays["start"], arrays["block"], arrays["repeats"]
                )
            ]
            sweeps = {
                name: arrays[name]
                for name in ("distances", "distinct", "ws_best")
                if name in arrays
            }
        return RunTrace(trace, runs), sweeps
    except Exception as err:
        quarantine_paths(
            (trace_path, runs_path),
            "symbolic",
            key,
            f"{type(err).__name__}: {err}",
            observed=observed,
        )
        return None


def _store_entry(
    cdir: Path,
    key: str,
    runtrace: RunTrace,
    lru: SymbolicLRU,
    ws: SymbolicWS,
) -> None:
    try:
        cdir.mkdir(parents=True, exist_ok=True)
        trace_path, runs_path = _entry_paths(cdir, key)
        tmp = trace_path.with_name(trace_path.name + f".tmp{os.getpid()}.npz")
        try:
            trace_io.save_trace(runtrace.trace, tmp, compress=False)
            os.replace(tmp, trace_path)
        finally:
            if tmp.exists():
                tmp.unlink()
        runs = runtrace.runs
        # The analysis arrays ride along like trace-mode's sweeps-*.npz:
        # the kept-string LRU distances/distinct skip the stack
        # simulation on reload, and ws_best skips the min-ST search.
        best = ws.min_space_time()
        tmp = runs_path.with_name(runs_path.name + f".tmp{os.getpid()}.npz")
        try:
            np.savez(
                tmp,
                start=np.array([r.start for r in runs], dtype=np.int64),
                block=np.array([r.block for r in runs], dtype=np.int64),
                repeats=np.array([r.repeats for r in runs], dtype=np.int64),
                distances=lru._distances,
                distinct=lru._distinct,
                ws_best=np.array(
                    [
                        best.parameter,
                        best.page_faults,
                        best.mem_average,
                        best.space_time,
                        best.fault_service,
                    ]
                ),
            )
            os.replace(tmp, runs_path)
        finally:
            if tmp.exists():
                tmp.unlink()
    except OSError:
        pass  # a read-only filesystem must not break the experiments


def symbolic_artifacts_for(
    name: str,
    page_config: Optional[PageConfig] = None,
    strategy: SizingStrategy = SizingStrategy.ACTIVE_PAGE,
    with_locks: bool = False,
) -> SymbolicArtifacts:
    """Build (or fetch) the symbolic artifacts for one benchmark."""
    page_config = page_config or PageConfig()
    key = (name.upper(), page_config, strategy, with_locks)
    cached = _SYM_CACHE.get(key)
    if cached is not None:
        return cached
    workload = get_workload(name)
    program = workload.program()
    symbols = workload.symbols()
    analysis = analyze_program(
        program, symbols=symbols, page_config=page_config, strategy=strategy
    )
    plan = instrument_program(program, analysis=analysis, with_locks=with_locks)

    cdir = cache_dir()
    disk_key = _symbolic_cache_key(workload.source, page_config, strategy, with_locks)
    stats: Dict[str, int] = {}
    loaded = _load_entry(cdir, disk_key) if cdir else None
    if loaded is not None:
        STATS.cache_hits += 1
        runtrace, sweeps = loaded
    else:
        STATS.cache_misses += 1
        sweeps = {}
        t0 = time.perf_counter()
        runtrace = generate_runtrace(
            program,
            plan=plan,
            symbols=symbols,
            page_config=page_config,
            stats=stats,
        )
        STATS.add(
            "symbolic-gen", time.perf_counter() - t0, len(runtrace.trace.pages)
        )

    t0 = time.perf_counter()
    surrogate = Surrogate(runtrace.trace.pages, runtrace.runs)
    inner = None
    if "distances" in sweeps and "distinct" in sweeps:
        inner = LRUSweep.from_arrays(
            {
                "pages": surrogate.kept_pages,
                "distances": sweeps["distances"],
                "distinct": sweeps["distinct"],
            },
            program=workload.name,
        )
    lru = SymbolicLRU(surrogate, program=workload.name, inner=inner)
    ws = SymbolicWS(surrogate, program=workload.name)
    best = sweeps.get("ws_best")
    if best is not None and int(best[4]) == ws.fault_service:
        ws._min_st_cache = SimulationResult(
            policy="WS",
            program=workload.name,
            page_faults=int(best[1]),
            references=len(runtrace.trace.pages),
            mem_average=float(best[2]),
            space_time=float(best[3]),
            parameter=int(best[0]),
            fault_service=ws.fault_service,
        )
    STATS.add(
        "symbolic-sweeps", time.perf_counter() - t0, 2 * len(surrogate.kept_pos)
    )
    if loaded is None and cdir is not None:
        _store_entry(cdir, disk_key, runtrace, lru, ws)
    artifacts = SymbolicArtifacts(
        name=workload.name,
        analysis=analysis,
        plan=plan,
        runtrace=runtrace,
        surrogate=surrogate,
        lru=lru,
        ws=ws,
        gen_stats=stats,
    )
    _SYM_CACHE[key] = artifacts
    return artifacts


def clear_symbolic_cache(disk: bool = True) -> None:
    """Drop memoized symbolic artifacts (and disk entries by default)."""
    _SYM_CACHE.clear()
    if not disk:
        return
    cdir = cache_dir()
    if cdir is None or not cdir.is_dir():
        return
    for pattern in ("runs-*.npz", "runs-*.corrupt"):
        for path in cdir.glob(pattern):
            path.unlink(missing_ok=True)
