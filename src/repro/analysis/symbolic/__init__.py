"""Trace-free (symbolic) locality engine.

Computes the paper's LRU / WS / CD statistics from a *run-structured*
trace: the compiled affine nests report their periodic structure, runs
are verified element-wise, and weighted analyzers reproduce the exact
analyzers' integer counts from only the collapsed representatives.
"""

from repro.analysis.symbolic.cd import simulate_cd_symbolic
from repro.analysis.symbolic.collapse import Surrogate, detect_runs
from repro.analysis.symbolic.interp import SymbolicCompiler, generate_runtrace
from repro.analysis.symbolic.locality import SymbolicLRU, SymbolicWS
from repro.analysis.symbolic.runtrace import Run, RunTrace

__all__ = [
    "Run",
    "RunTrace",
    "Surrogate",
    "SymbolicArtifacts",
    "SymbolicCompiler",
    "SymbolicLRU",
    "SymbolicWS",
    "detect_runs",
    "generate_runtrace",
    "simulate_cd_symbolic",
    "symbolic_artifacts_for",
]


def __getattr__(name):
    # artifacts imports the experiments runner (for the shared cache
    # dir and STATS); load it lazily to keep `repro.analysis.symbolic`
    # importable without the experiments package in the cycle.
    if name in ("SymbolicArtifacts", "symbolic_artifacts_for"):
        from repro.analysis.symbolic import artifacts

        return getattr(artifacts, name)
    raise AttributeError(name)
