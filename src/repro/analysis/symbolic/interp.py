"""Run-structure-aware trace generation.

:class:`SymbolicCompiler` is the affine trace compiler
(:class:`~repro.tracegen.compile.TraceCompiler`) extended with two
things:

* a **segment journal** — every committed nest records the half-open
  reference interval it produced together with candidate periods
  (references per innermost-loop iteration), which is exactly what
  :func:`~repro.analysis.symbolic.collapse.detect_runs` needs;
* a **recipe tier** (:mod:`~repro.analysis.symbolic.nests`) — single
  affine loops matching a strict shape are generated arithmetically
  (offset = lin0 + dlin·t) without building the binder's iteration
  grids, which removes most of the generation cost of the two hot
  workload nests.  A recipe that cannot prove exactness declines and
  the ordinary binder (then the interpreter) takes over.

``generate_runtrace`` mirrors :func:`~repro.tracegen.interpreter.generate_trace`
— same arguments, same errors, element-identical pages/directives — but
returns a :class:`~repro.analysis.symbolic.runtrace.RunTrace` whose run
journal the weighted analyzers consume.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.parameters import PageConfig
from repro.directives.model import InstrumentationPlan
from repro.frontend import ast
from repro.frontend.symbols import SymbolTable
from repro.tracegen.compile import TraceCompiler, _Binder, _Fallback, _stmt_ref_exprs
from repro.tracegen.interpreter import Interpreter
from repro.analysis.symbolic.collapse import detect_runs
from repro.analysis.symbolic.runtrace import RunTrace

__all__ = ["SymbolicCompiler", "generate_runtrace"]


def _period_hints(root: ast.DoLoop) -> List[int]:
    """Candidate periods for a compiled nest: references per iteration
    of each innermost loop whose body is straight-line (Assign /
    Continue / Print only — guarded statements make the per-iteration
    reference count data-dependent)."""
    hints = set()

    def visit(loop: ast.DoLoop) -> None:
        inner = [s for s in loop.body if isinstance(s, ast.DoLoop)]
        for sub in inner:
            visit(sub)
        if inner:
            return
        if not all(
            isinstance(s, (ast.Assign, ast.Continue, ast.Print))
            for s in loop.body
        ):
            return
        refs = sum(len(_stmt_ref_exprs(s)) for s in loop.body)
        if refs >= 1:
            hints.add(refs)

    visit(root)
    return sorted(hints)


class SymbolicCompiler(TraceCompiler):
    """TraceCompiler that journals committed segments and tries the
    recipe tier before the general binder."""

    def __init__(self, interp) -> None:
        super().__init__(interp)
        #: (start, end, candidate periods) per committed nest
        self.segments: List[Tuple[int, int, List[int]]] = []
        #: loop_id -> recipe | False (False: structurally refused)
        self._recipes: dict = {}
        self.recipe_binds = 0

    def _recipe_for(self, loop: ast.DoLoop):
        cached = self._recipes.get(loop.loop_id)
        if cached is None:
            from repro.analysis.symbolic.nests import build_recipe

            cached = build_recipe(self, loop)
            if cached is None:
                cached = False
            self._recipes[loop.loop_id] = cached
        return cached or None

    def try_execute(self, loop: ast.DoLoop) -> bool:
        if not self.enabled or not self._static_legal(loop):
            return False
        recipe = self._recipe_for(loop)
        if recipe is not None:
            batch = recipe.bind(self.it)
            if batch is not None:
                self.recipe_binds += 1
                base = len(self.it._refs)
                self.segments.append(
                    (base, base + len(batch.pages), recipe.period_hints)
                )
                self._commit(batch)
                return True
        wins, losses = self._score.get(loop.loop_id, (0, 0))
        if losses >= 4 and not wins:
            return False
        try:
            batch = _Binder(self, loop).run()
        except _Fallback:
            self.fallback_binds += 1
            self._score[loop.loop_id] = (wins, losses + 1)
            return False
        self._score[loop.loop_id] = (wins + 1, losses)
        base = len(self.it._refs)
        self.segments.append(
            (base, base + len(batch.pages), _period_hints(loop))
        )
        self._commit(batch)
        return True


def generate_runtrace(
    program: ast.Program,
    plan: Optional[InstrumentationPlan] = None,
    symbols: Optional[SymbolTable] = None,
    page_config: Optional[PageConfig] = None,
    max_references: int = 5_000_000,
    max_operations: int = 100_000_000,
    stats: Optional[dict] = None,
) -> RunTrace:
    """Execute ``program`` and return its run-structured trace.

    The flat trace inside the result is element-identical to
    ``generate_trace(...)`` output (same pages, directives, truncation
    and errors); the run journal is verified against it at detection
    time.  ``stats`` (optional dict) receives coverage counters:
    recipe/binder/fallback bind counts and run-journal totals — how
    much of the trace the symbolic tier proved versus recovered by
    falling back to interpretation.
    """
    interpreter = Interpreter(
        program,
        symbols=symbols,
        page_config=page_config,
        plan=plan,
        max_references=max_references,
        max_operations=max_operations,
        compile_nests=True,
    )
    compiler = SymbolicCompiler(interpreter)
    interpreter._compiler = compiler
    trace = interpreter.run()
    boundaries = [d.position for d in trace.directives]
    runs = detect_runs(trace.pages, compiler.segments, boundaries)
    result = RunTrace(trace, runs)
    if stats is not None:
        compiled_refs = sum(e - s for s, e, _ in compiler.segments)
        stats.update(
            references=len(trace.pages),
            compiled_segments=len(compiler.segments),
            compiled_references=compiled_refs,
            recipe_binds=compiler.recipe_binds,
            fallback_binds=compiler.fallback_binds,
            runs=len(runs),
            kept_references=result.compressed_length(),
        )
    return result
