"""Locality virtual-size calculus — the deterministic procedure the paper
defers to future work, reconstructed from its Figure-5 walkthrough.

For a loop ``L`` at level λ, the locality comprised by ``L`` is sized by
summing, over every array referenced inside ``L``'s subtree, the number
of pages of that array which participate in the locality.  The
contribution of a reference group (array ``A`` driven by loop ``M`` at
level μ, depth difference ``d = μ − λ``) follows the paper's rules:

=================  =====  ==================================================
Θ of the group       d    contribution (pages, always capped at AVS)
=================  =====  ==================================================
INVARIANT           any   ``X`` (distinct tuples — same pages re-referenced)
SEQUENTIAL (vec)     0    ``X`` ("a maximum of three pages of vector V…")
SEQUENTIAL (vec)    ≥1    AVS ("the entire virtual space of a vector
                          referenced at level λ≠1 contributes to all
                          higher level localities")
ROW_WISE             0    ``X_r · X_c`` (no locality at its own level)
ROW_WISE             1    ``X_r · N`` ("we use N instead of X_c … once a
                          row I is referenced all of its elements will be")
ROW_WISE            ≥2    AVS
COLUMN_WISE          0    ACTIVE_PAGE: ``X_r · X_c`` / CONSERVATIVE:
                          ``X_c · CVS`` (the walked column(s))
COLUMN_WISE          1    ``X_r · X_c`` when the column subscript is driven
                          by ``L`` itself (fresh column per iteration, the
                          DD case) else ``X_c · CVS`` (same columns re-walked)
COLUMN_WISE         ≥2    AVS ("contributes … at least two levels higher")
DIAGONAL             0    ``X`` (distinct tuples)
DIAGONAL            ≥1    AVS
=================  =====  ==================================================

A loop that references no arrays "does not form a locality"; its X is
the system-default minimum allocation (``min_pages``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.frontend import ast
from repro.frontend.symbols import SymbolTable
from repro.analysis.looptree import LoopNode, LoopTree
from repro.analysis.parameters import PageConfig
from repro.analysis.priority import assign_priority_indexes
from repro.analysis.reference_order import (
    ReferenceGroup,
    ReferenceOrder,
    classify_references,
    expression_variables,
)


class SizingStrategy(enum.Enum):
    """How to size a column walked at its own level (d = 0).

    ACTIVE_PAGE follows the Figure-5 walkthrough (count pages live at one
    instant); CONSERVATIVE follows the Figure-1 narrative (the whole
    column is the locality).  CONSERVATIVE allocations are never smaller.
    """

    ACTIVE_PAGE = "active-page"
    CONSERVATIVE = "conservative"


@dataclass
class Contribution:
    """Pages one reference group contributes to one loop's locality."""

    array: str
    driver_loop_id: Optional[int]
    driver_level: Optional[int]
    order: ReferenceOrder
    depth_difference: Optional[int]
    pages: int
    rule: str


@dataclass
class LocalityReport:
    """Analysis result for one loop."""

    loop_id: int
    line: int
    var: str
    level: int  # Λ
    nest_depth: int  # Δ of the nest containing this loop
    priority_index: int  # PI from Procedure 1
    virtual_size: int  # X: pages of the locality comprised by this loop
    contributions: List[Contribution] = field(default_factory=list)
    #: True when some array contributed (False ⇒ virtual_size is the
    #: system-default minimum)
    forms_locality: bool = True


class LocalityAnalysis:
    """Whole-program locality analysis.

    Combines the loop tree (Δ, Λ), Procedure-1 priority indexes, and the
    per-loop locality virtual sizes, exposing them by ``loop_id``.
    """

    def __init__(
        self,
        program: ast.Program,
        symbols: SymbolTable,
        page_config: Optional[PageConfig] = None,
        strategy: SizingStrategy = SizingStrategy.ACTIVE_PAGE,
        min_pages: int = 1,
    ):
        if min_pages < 1:
            raise ValueError("min_pages must be at least 1")
        self.program = program
        self.symbols = symbols
        self.page_config = page_config or PageConfig()
        self.strategy = strategy
        self.min_pages = min_pages
        self.tree = LoopTree(program)
        self.priority = assign_priority_indexes(self.tree)
        self.reports: Dict[int, LocalityReport] = {}
        self._ranks = {name: info.rank for name, info in symbols.arrays.items()}
        for node in self.tree.nodes():
            self.reports[node.loop_id] = self._analyze_loop(node)

    # -- public queries ------------------------------------------------------

    def report_for(self, loop_id: int) -> LocalityReport:
        return self.reports[loop_id]

    @property
    def program_virtual_size(self) -> int:
        """V: total pages of the (page-aligned) array space."""
        return sum(
            self.page_config.array_virtual_size(info)
            for info in self.symbols.arrays.values()
        )

    # -- calculus --------------------------------------------------------------

    def _analyze_loop(self, node: LoopNode) -> LocalityReport:
        groups = classify_references(self.tree, node, self._ranks)
        contributions: List[Contribution] = []
        # Combine the groups of one array by summing, capped at AVS: the
        # paper's vector example "W = V(I) + V(I+1) + V(J)" counts three
        # pages even though V(J) is invariant within the loop containing
        # V.  The AVS cap keeps overlapping groups (the same array driven
        # by sibling loops) from counting the array more than once whole.
        per_array: Dict[str, int] = {}
        for group in groups:
            contribution = self._contribution(group, node)
            contributions.append(contribution)
            per_array[group.array] = per_array.get(group.array, 0) + contribution.pages
        total = 0
        for array, pages in per_array.items():
            avs = self.page_config.array_virtual_size(self.symbols.arrays[array])
            total += min(pages, avs)
        forms_locality = total > 0
        return LocalityReport(
            loop_id=node.loop_id,
            line=node.loop.line,
            var=node.var,
            level=node.level,
            nest_depth=self.tree.nest_depth(node),
            priority_index=self.priority[node.loop_id],
            virtual_size=max(total, self.min_pages),
            contributions=contributions,
            forms_locality=forms_locality,
        )

    def _contribution(self, group: ReferenceGroup, scope: LoopNode) -> Contribution:
        info = self.symbols.arrays[group.array]
        avs = self.page_config.array_virtual_size(info)
        cvs = self.page_config.column_virtual_size(info)
        order = group.order
        if group.driver is None:
            pages = min(group.x_total, avs)
            return self._make(group, scope, order, None, pages, "invariant: X tuples")
        d = group.driver.level - scope.level
        if group.rank == 1:
            if d == 0:
                pages, rule = min(group.x_total, avs), "vector d=0: X pages"
            else:
                pages, rule = avs, "vector d>=1: AVS"
        elif order is ReferenceOrder.ROW_WISE:
            if d == 0:
                pages, rule = (
                    min(group.x_row * group.x_col, avs),
                    "row-wise d=0: Xr*Xc active pages",
                )
            elif d == 1:
                pages, rule = (
                    min(group.x_row * info.columns, avs),
                    "row-wise d=1: Xr*N",
                )
            else:
                pages, rule = avs, "row-wise d>=2: AVS"
        elif order is ReferenceOrder.COLUMN_WISE:
            if d == 0:
                if self.strategy is SizingStrategy.CONSERVATIVE:
                    # The walked column(s) — but never below the live
                    # pages (a stencil can touch more rows than one
                    # column spans, e.g. Xr = 3 with a one-page column).
                    pages, rule = (
                        min(max(group.x_col * cvs, group.x_row * group.x_col), avs),
                        "column-wise d=0 (conservative): max(Xc*CVS, Xr*Xc)",
                    )
                else:
                    pages, rule = (
                        min(group.x_row * group.x_col, avs),
                        "column-wise d=0 (active-page): Xr*Xc",
                    )
            elif d == 1:
                if self._columns_driven_by(group, scope):
                    pages, rule = (
                        min(group.x_row * group.x_col, avs),
                        "column-wise d=1, fresh columns: Xr*Xc",
                    )
                else:
                    pages, rule = (
                        min(max(group.x_col * cvs, group.x_row * group.x_col), avs),
                        "column-wise d=1, re-walked columns: max(Xc*CVS, Xr*Xc)",
                    )
            else:
                pages, rule = avs, "column-wise d>=2: AVS"
        else:  # DIAGONAL
            if d == 0:
                pages, rule = min(group.x_total, avs), "diagonal d=0: X tuples"
            else:
                pages, rule = avs, "diagonal d>=1: AVS"
        return self._make(group, scope, order, d, pages, rule)

    @staticmethod
    def _columns_driven_by(group: ReferenceGroup, scope: LoopNode) -> bool:
        """True when any column subscript of the group depends on the
        scope loop's own variable (fresh columns every iteration)."""
        for ref in group.refs:
            if scope.var in expression_variables(ref.indices[1]):
                return True
        return False

    @staticmethod
    def _make(
        group: ReferenceGroup,
        scope: LoopNode,
        order: ReferenceOrder,
        d: Optional[int],
        pages: int,
        rule: str,
    ) -> Contribution:
        return Contribution(
            array=group.array,
            driver_loop_id=group.driver.loop_id if group.driver else None,
            driver_level=group.driver.level if group.driver else None,
            order=order,
            depth_difference=d,
            pages=pages,
            rule=rule,
        )


def analyze_program(
    program: ast.Program,
    symbols: Optional[SymbolTable] = None,
    page_config: Optional[PageConfig] = None,
    strategy: SizingStrategy = SizingStrategy.ACTIVE_PAGE,
    min_pages: int = 1,
) -> LocalityAnalysis:
    """Convenience wrapper: resolve symbols (when not given) and analyze."""
    if symbols is None:
        symbols = SymbolTable.from_program(program)
    return LocalityAnalysis(
        program,
        symbols,
        page_config=page_config,
        strategy=strategy,
        min_pages=min_pages,
    )
