"""The Θ (order of reference) and X (distinct indexes) parameters.

Given an array reference such as ``A(I, J+1)`` inside a loop nest, this
module determines:

* which enclosing loop actually *drives* the reference (the innermost
  enclosing loop whose variable occurs in a subscript) — the reference's
  *effective level*, which may be higher than its syntactic level when a
  loop does not index the array at all;
* the order of reference Θ relative to the driving loop, under
  column-major storage:

  - **COLUMN_WISE** — the driving variable occurs in the row subscript
    (consecutive iterations walk down a column, i.e. contiguous memory);
  - **ROW_WISE** — the driving variable occurs in the column subscript
    (consecutive iterations stride across columns);
  - **DIAGONAL** — it occurs in both subscripts;
  - **INVARIANT** — no enclosing loop variable occurs in any subscript
    (the same element(s) are re-referenced);
  - **SEQUENTIAL** — the vector analogue of COLUMN_WISE;

* ``X`` — the number of distinct index expressions per subscript
  position, computed over a *group* of references to the same array at
  the same effective loop (the paper's "number of indexed variables used
  to reference array elements").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.frontend import ast
from repro.analysis.looptree import LoopNode, LoopTree


class ReferenceOrder(enum.Enum):
    """Θ: how consecutive iterations of the driving loop move through the
    array, under column-major storage."""

    SEQUENTIAL = "sequential"  # vector driven by a loop variable
    COLUMN_WISE = "column-wise"
    ROW_WISE = "row-wise"
    DIAGONAL = "diagonal"
    INVARIANT = "invariant"


def expression_variables(expr: ast.Expr) -> Set[str]:
    """Names of scalar variables occurring in ``expr``.

    Intrinsic function names are excluded; variables inside call
    arguments and nested array subscripts are included (they still vary
    the reference).
    """
    names: Set[str] = set()
    for node in ast.walk_expressions(expr):
        if isinstance(node, ast.Var):
            names.add(node.name)
    return names


def normalize_expression(expr: ast.Expr) -> str:
    """Canonical text of an index expression, used to count distinct
    indexes: ``I + 1`` and ``1+I`` normalize to the same string."""
    if isinstance(expr, ast.Num):
        return repr(expr.value)
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.ArrayRef):
        inner = ",".join(normalize_expression(ix) for ix in expr.indices)
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.UnaryOp):
        return f"(-{normalize_expression(expr.operand)})"
    if isinstance(expr, ast.BinOp):
        left = normalize_expression(expr.left)
        right = normalize_expression(expr.right)
        if expr.op in ("+", "*") and right < left:
            left, right = right, left
        return f"({left}{expr.op}{right})"
    if isinstance(expr, ast.Call):
        inner = ",".join(normalize_expression(a) for a in expr.args)
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.Compare):
        return (
            f"({normalize_expression(expr.left)}{expr.op}"
            f"{normalize_expression(expr.right)})"
        )
    if isinstance(expr, ast.LogicalOp):
        return (
            f"({normalize_expression(expr.left)}{expr.op}"
            f"{normalize_expression(expr.right)})"
        )
    if isinstance(expr, ast.LogicalLit):
        return ".TRUE." if expr.value else ".FALSE."
    raise TypeError(f"cannot normalize {type(expr).__name__}")  # pragma: no cover


@dataclass
class ReferenceGroup:
    """All references to one array that are *driven by* one loop.

    ``driver`` is the effective loop (innermost enclosing loop whose
    variable occurs in a subscript); ``None`` means the references are
    invariant within the whole nest under analysis.
    """

    array: str
    rank: int
    driver: Optional[LoopNode]
    refs: List[ast.ArrayRef] = field(default_factory=list)
    #: distinct normalized index expressions per subscript position
    distinct_indexes: Tuple[Set[str], ...] = ()

    @property
    def order(self) -> ReferenceOrder:
        if self.driver is None:
            return ReferenceOrder.INVARIANT
        if self.rank == 1:
            return ReferenceOrder.SEQUENTIAL
        var = self.driver.var
        row_driven = any(
            var in expression_variables(ref.indices[0]) for ref in self.refs
        )
        col_driven = any(
            var in expression_variables(ref.indices[1]) for ref in self.refs
        )
        if row_driven and col_driven:
            return ReferenceOrder.DIAGONAL
        if row_driven:
            return ReferenceOrder.COLUMN_WISE
        return ReferenceOrder.ROW_WISE

    @property
    def x_row(self) -> int:
        """X_r: distinct index expressions in the row subscript."""
        return max(1, len(self.distinct_indexes[0]))

    @property
    def x_col(self) -> int:
        """X_c: distinct index expressions in the column subscript
        (1 for vectors, the paper's N = 1 convention)."""
        if self.rank == 1:
            return 1
        return max(1, len(self.distinct_indexes[1]))

    @property
    def x_total(self) -> int:
        """X: distinct full index tuples (upper bound on pages touched in
        one iteration of the driving loop)."""
        tuples = {
            tuple(normalize_expression(ix) for ix in ref.indices)
            for ref in self.refs
        }
        return max(1, len(tuples))


def _effective_driver(
    ref: ast.ArrayRef,
    enclosing: Sequence[LoopNode],
) -> Optional[LoopNode]:
    """The innermost loop in ``enclosing`` (ordered outer→inner) whose
    variable occurs in any subscript of ``ref``."""
    used: Set[str] = set()
    for ix in ref.indices:
        used |= expression_variables(ix)
    for node in reversed(enclosing):
        if node.var in used:
            return node
    return None


def classify_references(
    tree: LoopTree,
    scope: LoopNode,
    ranks: Dict[str, int],
) -> List[ReferenceGroup]:
    """Group the array references inside ``scope`` by (array, driver).

    ``ranks`` maps array names to their declared rank (1 or 2), from the
    symbol table.  Each reference inside ``scope``'s subtree is assigned
    to its *effective* driving loop: the innermost loop on the syntactic
    path from ``scope`` to the reference whose variable occurs in a
    subscript.  References driven by no loop in that path form INVARIANT
    groups attached to ``driver=None``.
    """
    groups: Dict[Tuple[str, Optional[int]], ReferenceGroup] = {}
    for node in scope.self_and_descendants():
        path = scope.path_down_to(node)
        for ref in node.direct_refs:
            driver = _effective_driver(ref, path)
            key = (ref.name, driver.loop_id if driver else None)
            group = groups.get(key)
            if group is None:
                rank = ranks.get(ref.name, len(ref.indices))
                group = ReferenceGroup(
                    array=ref.name,
                    rank=rank,
                    driver=driver,
                    refs=[],
                    distinct_indexes=tuple(set() for _ in range(rank)),
                )
                groups[key] = group
            group.refs.append(ref)
            for position, ix in enumerate(ref.indices):
                group.distinct_indexes[position].add(normalize_expression(ix))
    return list(groups.values())
