"""Procedure 1 (Figure 2): assigning priority indexes to loop levels.

The paper's procedure scans the nest bottom-up:

    With every inner loop in the nested loop structure DO
        Assign PI = 1 to the inner most loop;
        REPEAT
            Next Outer Loop;
            IF (PI is already assigned) THEN PI = maximum(PI+1, old PI)
            ELSE PI = PI + 1;
        UNTIL Outer Most Loop Is Encountered;

which is equivalent to: the PI of a loop is the height of that loop in
its nest — 1 for innermost loops, and ``1 + max(children PIs)``
otherwise.  The outermost loop of a nest of depth Δ therefore gets
``PI = Δ`` (properties (1) and (2) in the paper), and intermediate loops
get their distance to the deepest innermost loop below them (property
(3)).
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.looptree import LoopNode, LoopTree


def assign_priority_indexes(tree: LoopTree) -> Dict[int, int]:
    """Run Procedure 1 over the whole loop forest.

    Returns a map from ``loop_id`` to the priority index PI.  Implemented
    literally as the paper's bottom-up walk: starting from every
    innermost loop, push ``PI+1`` outward, keeping the maximum when a
    loop was already assigned by another inner chain.
    """
    pi: Dict[int, int] = {}
    innermost = [node for node in tree.nodes() if node.is_innermost]
    for leaf in innermost:
        pi[leaf.loop_id] = max(pi.get(leaf.loop_id, 1), 1)
        current = 1
        node = leaf.parent
        while node is not None:
            current += 1
            previous = pi.get(node.loop_id)
            if previous is not None:
                current = max(current, previous)
            pi[node.loop_id] = current
            node = node.parent
    return pi


def priority_of(node: LoopNode) -> int:
    """PI of a single node computed structurally (height of the subtree).

    Equivalent to :func:`assign_priority_indexes` for the same node; used
    as a cross-check in tests and by callers that need one value without
    building the full map.
    """
    return node.subtree_depth
