"""Source-level locality analysis (Section 2 of the paper).

The paper identifies six parameters for computing the virtual size of a
program's current localities:

====  =============================================================
P     page size (system dependent) — :class:`PageConfig`
Σ     array size from the DIMENSION statement — :class:`PageConfig`
      derives AVS (array virtual size) and CVS (column virtual size)
Δ     nest depth of the loop structure — :class:`looptree.LoopTree`
X     number of distinct indexed variables — :mod:`reference_order`
Θ     order of reference (row-wise / column-wise) — :mod:`reference_order`
Λ     level at which arrays are referenced — :class:`looptree.LoopNode`
====  =============================================================

On top of these, :mod:`locality` computes the locality virtual size of
every loop (the ``X`` argument of ALLOCATE directives) and
:mod:`priority` implements Procedure 1 (Figure 2), the bottom-up priority
index assignment.
"""

from repro.analysis.locality import (
    Contribution,
    LocalityAnalysis,
    LocalityReport,
    SizingStrategy,
    analyze_program,
)
from repro.analysis.looptree import LoopNode, LoopTree
from repro.analysis.parameters import PageConfig
from repro.analysis.priority import assign_priority_indexes
from repro.analysis.reference_order import (
    ReferenceGroup,
    ReferenceOrder,
    classify_references,
    expression_variables,
    normalize_expression,
)

__all__ = [
    "Contribution",
    "LocalityAnalysis",
    "LocalityReport",
    "LoopNode",
    "LoopTree",
    "PageConfig",
    "ReferenceGroup",
    "ReferenceOrder",
    "SizingStrategy",
    "analyze_program",
    "assign_priority_indexes",
    "classify_references",
    "expression_variables",
    "normalize_expression",
]
