"""Human-readable analysis reports (markdown).

Renders everything the compiler derived from one program — the
Section-2 parameters per array, the loop hierarchy with Λ/Δ/PI, the
locality sizes with their per-array contribution arithmetic, and the
directives Algorithms 1 and 2 would insert — as a markdown document.
Used by ``python -m repro analyze --report`` and handy when porting a
new kernel into the workload catalog.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.locality import LocalityAnalysis, analyze_program
from repro.directives import instrument_program
from repro.frontend import ast
from repro.frontend.symbols import SymbolTable


def _arrays_section(analysis: LocalityAnalysis) -> List[str]:
    cfg = analysis.page_config
    lines = [
        "## Arrays",
        "",
        "| array | shape | elements | AVS (pages) | CVS (pages) |",
        "|---|---|---:|---:|---:|",
    ]
    for name, info in analysis.symbols.arrays.items():
        shape = "×".join(str(d) for d in info.dims)
        lines.append(
            f"| {name} | {shape} | {info.element_count} "
            f"| {cfg.array_virtual_size(info)} "
            f"| {cfg.column_virtual_size(info)} |"
        )
    lines.append("")
    lines.append(
        f"Total virtual size V = **{analysis.program_virtual_size} pages** "
        f"({cfg.page_bytes}-byte pages, {cfg.word_bytes}-byte elements)."
    )
    return lines


def _loops_section(analysis: LocalityAnalysis) -> List[str]:
    lines = [
        "## Loop hierarchy",
        "",
        "| loop | line | Λ (level) | PI | X (pages) | locality |",
        "|---|---:|---:|---:|---:|---|",
    ]
    for node in analysis.tree.nodes():
        report = analysis.reports[node.loop_id]
        marker = "· " * (node.level - 1)
        head = f"DO WHILE" if node.is_while else f"DO {node.var}"
        lines.append(
            f"| {marker}{head} | {report.line} | {report.level} "
            f"| {report.priority_index} | {report.virtual_size} "
            f"| {'yes' if report.forms_locality else 'default minimum'} |"
        )
    return lines


def _contributions_section(analysis: LocalityAnalysis) -> List[str]:
    lines = ["## Locality arithmetic", ""]
    for node in analysis.tree.nodes():
        report = analysis.reports[node.loop_id]
        head = "DO WHILE" if node.is_while else f"DO {node.var}"
        lines.append(
            f"**{head}** (line {report.line}): X = {report.virtual_size} pages"
        )
        for c in report.contributions:
            if c.depth_difference is None:
                depth = "invariant"
            else:
                depth = f"d={c.depth_difference}"
            lines.append(
                f"- `{c.array}` → {c.pages} pages ({c.order.value}, {depth}; "
                f"{c.rule})"
            )
        lines.append("")
    return lines


def _directives_section(
    program: ast.Program, analysis: LocalityAnalysis
) -> List[str]:
    plan = instrument_program(program, analysis=analysis)
    lines = ["## Inserted directives", ""]
    for node in analysis.tree.nodes():
        head = "DO WHILE" if node.is_while else f"DO {node.var}"
        lock = plan.locks_before.get(node.loop_id)
        if lock is not None:
            lines.append(f"- before {head} (line {node.loop.line}): `{lock.render()}`")
        directive = plan.allocates.get(node.loop_id)
        if directive is not None:
            lines.append(
                f"- before {head} (line {node.loop.line}): `{directive.render()}`"
            )
        unlock = plan.unlocks_after.get(node.loop_id)
        if unlock is not None:
            lines.append(f"- after {head} (line {node.loop.line}): `{unlock.render()}`")
    if len(lines) == 2:
        lines.append("*(no loops: nothing to instrument)*")
    return lines


def explain_program(
    program: ast.Program,
    symbols: Optional[SymbolTable] = None,
    analysis: Optional[LocalityAnalysis] = None,
) -> str:
    """Full markdown analysis report for one program."""
    if analysis is None:
        analysis = analyze_program(program, symbols=symbols)
    lines = [
        f"# Locality analysis: {program.name}",
        "",
        f"Loop-nest depth Δ = {analysis.tree.max_depth}; "
        f"{len(list(analysis.tree.nodes()))} loops; "
        f"{len(analysis.symbols.arrays)} arrays; "
        f"sizing strategy: {analysis.strategy.value}.",
        "",
    ]
    lines.extend(_arrays_section(analysis))
    lines.append("")
    lines.extend(_loops_section(analysis))
    lines.append("")
    lines.extend(_contributions_section(analysis))
    lines.extend(_directives_section(program, analysis))
    return "\n".join(lines) + "\n"
