"""Trace representation: dense reference string + sparse directives.

A trace is the page-reference string of one program execution, stored as
a numpy ``int32`` array for fast replay, together with the directive
events the instrumented program executed.  Each directive event is
stamped with its *position*: the index of the reference before which it
fires.  Policies that ignore directives (LRU, WS, FIFO, OPT, …) replay
``pages`` directly; the CD policy merges the two streams.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.directives.model import AllocateRequest


class DirectiveKind(enum.Enum):
    ALLOCATE = "allocate"
    LOCK = "lock"
    UNLOCK = "unlock"


@dataclass(frozen=True)
class DirectiveEvent:
    """One executed directive, resolved to run-time values.

    ``position`` — fires before ``ReferenceTrace.pages[position]``
    (``position == len(pages)`` means after the last reference).
    ``site`` — the ``loop_id`` the directive was inserted at; a LOCK
    executed again at the same site supersedes the pages it locked
    there previously (the pin follows the moving locality).
    """

    position: int
    kind: DirectiveKind
    site: int
    requests: Tuple[AllocateRequest, ...] = ()
    lock_pages: Tuple[int, ...] = ()
    priority_index: int = 0  # PJ for LOCK events

    def __post_init__(self) -> None:
        if self.position < 0:
            raise ValueError("position must be non-negative")
        if self.kind is DirectiveKind.ALLOCATE and not self.requests:
            raise ValueError("ALLOCATE event needs requests")
        if self.kind is DirectiveKind.LOCK and self.priority_index < 2:
            raise ValueError("LOCK event needs PJ >= 2")


@dataclass
class ReferenceTrace:
    """The page-reference string of one execution."""

    program_name: str
    pages: np.ndarray  # int32 page numbers, one per array-element access
    total_pages: int  # V: size of the virtual page space
    directives: List[DirectiveEvent] = field(default_factory=list)
    #: first_page/page_count per array, for diagnostics and reports
    array_pages: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: True when generation stopped at the reference cap
    truncated: bool = False

    def __post_init__(self) -> None:
        self.pages = np.asarray(self.pages, dtype=np.int32)
        positions = [d.position for d in self.directives]
        if positions != sorted(positions):
            raise ValueError("directive events must be position-ordered")
        if len(self.pages) and self.pages.min() < 0:
            raise ValueError("negative page number in trace")
        if len(self.pages) and self.total_pages <= int(self.pages.max()):
            raise ValueError("total_pages smaller than a referenced page")

    @property
    def length(self) -> int:
        """R: the reference-string length."""
        return int(len(self.pages))

    @property
    def distinct_pages(self) -> int:
        """Number of distinct pages actually referenced."""
        if not len(self.pages):
            return 0
        return int(len(np.unique(self.pages)))

    def footprint_by_array(self) -> Dict[str, int]:
        """Distinct pages referenced, per array."""
        result: Dict[str, int] = {}
        if not len(self.pages):
            return {name: 0 for name in self.array_pages}
        unique = np.unique(self.pages)
        for name, (first, count) in self.array_pages.items():
            mask = (unique >= first) & (unique < first + count)
            result[name] = int(mask.sum())
        return result

    def without_directives(self) -> "ReferenceTrace":
        """A copy that carries no directive events (for baseline runs)."""
        return ReferenceTrace(
            program_name=self.program_name,
            pages=self.pages,
            total_pages=self.total_pages,
            directives=[],
            array_pages=dict(self.array_pages),
            truncated=self.truncated,
        )

    def summary(self) -> str:
        return (
            f"{self.program_name}: R={self.length} references, "
            f"V={self.total_pages} pages ({self.distinct_pages} touched), "
            f"{len(self.directives)} directive events"
        )
