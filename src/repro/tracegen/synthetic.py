"""Synthetic reference-string generators.

Controlled traces for studying the policies in isolation from the
compiler pipeline: loop-structured walks (the paper's model of numerical
behavior), phased localities with abrupt transitions (the WS
literature's stress case), and the independent-reference model (the
memoryless baseline every locality-aware policy should beat).

Each generator returns a bare :class:`ReferenceTrace` (no directives);
:func:`with_allocate_events` attaches an ideal ALLOCATE stream to a
phased trace so CD can be studied with oracle-quality directives.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.directives.model import AllocateRequest
from repro.tracegen.events import DirectiveEvent, DirectiveKind, ReferenceTrace


def _finish(pages: List[int], name: str) -> ReferenceTrace:
    array = np.asarray(pages, dtype=np.int32)
    total = int(array.max()) + 1 if len(array) else 1
    return ReferenceTrace(program_name=name, pages=array, total_pages=total)


def sequential_sweep(
    page_count: int, sweeps: int = 1, name: str = "SWEEP"
) -> ReferenceTrace:
    """``sweeps`` passes over ``page_count`` pages in order — the
    column-major array walk, LRU's classic worst case at any allocation
    below ``page_count``."""
    if page_count < 1 or sweeps < 1:
        raise ValueError("page_count and sweeps must be positive")
    pages: List[int] = []
    for _ in range(sweeps):
        pages.extend(range(page_count))
    return _finish(pages, name)


def nested_loop_walk(
    outer_iterations: int,
    inner_pages: int,
    inner_repeats: int,
    shared_pages: int = 0,
    name: str = "NEST",
) -> ReferenceTrace:
    """The paper's locality model: an outer loop re-executing an inner
    loop that cycles over ``inner_pages`` pages ``inner_repeats`` times,
    optionally touching ``shared_pages`` outer-level pages per
    iteration (the A/B vectors of Figure 5)."""
    if outer_iterations < 1 or inner_pages < 1 or inner_repeats < 1:
        raise ValueError("iteration counts and sizes must be positive")
    if shared_pages < 0:
        raise ValueError("shared_pages must be non-negative")
    pages: List[int] = []
    inner_base = shared_pages
    for outer in range(outer_iterations):
        for s in range(shared_pages):
            pages.append(s)
        for _ in range(inner_repeats):
            for p in range(inner_pages):
                pages.append(inner_base + p)
    return _finish(pages, name)


def phased_localities(
    phases: Sequence[Tuple[int, int]],
    name: str = "PHASED",
    disjoint: bool = True,
) -> ReferenceTrace:
    """Abrupt interlocality transitions: each ``(size, duration)`` phase
    cycles over its own page set for ``duration`` references.

    ``disjoint=True`` gives every phase fresh pages (pure transition
    faulting); ``False`` reuses page numbers from 0 (re-reference after
    absence, the WS window stress)."""
    if not phases:
        raise ValueError("need at least one phase")
    pages: List[int] = []
    base = 0
    for size, duration in phases:
        if size < 1 or duration < 1:
            raise ValueError("phase sizes and durations must be positive")
        start = base if disjoint else 0
        for i in range(duration):
            pages.append(start + (i % size))
        if disjoint:
            base += size
    return _finish(pages, name)


def independent_references(
    page_count: int,
    length: int,
    seed: int = 0,
    skew: float = 0.0,
    name: str = "IRM",
) -> ReferenceTrace:
    """The independent-reference model: each reference drawn i.i.d.

    ``skew`` in [0, 1) biases toward low page numbers with a geometric
    profile (0 = uniform), approximating the hot/cold split real
    programs show even without loop structure."""
    if page_count < 1 or length < 0:
        raise ValueError("page_count must be positive, length non-negative")
    if not 0.0 <= skew < 1.0:
        raise ValueError("skew must be in [0, 1)")
    rng = np.random.default_rng(seed)
    if skew == 0.0:
        pages = rng.integers(0, page_count, size=length)
    else:
        weights = (1.0 - skew) * skew ** np.arange(page_count)
        weights /= weights.sum()
        pages = rng.choice(page_count, size=length, p=weights)
    trace = ReferenceTrace(
        program_name=name,
        pages=pages.astype(np.int32),
        total_pages=page_count,
    )
    return trace


def with_allocate_events(
    trace: ReferenceTrace,
    phases: Sequence[Tuple[int, int]],
    priority_index: int = 1,
) -> ReferenceTrace:
    """Attach oracle ALLOCATE events to a :func:`phased_localities`
    trace: one request per phase, sized exactly to the phase's locality.

    This is the upper bound for what a compiler could tell the OS; the
    gap between CD with these events and CD with real compiler output
    measures the analysis' slack."""
    events: List[DirectiveEvent] = []
    position = 0
    for site, (size, duration) in enumerate(phases):
        events.append(
            DirectiveEvent(
                position=position,
                kind=DirectiveKind.ALLOCATE,
                site=site,
                requests=(
                    AllocateRequest(priority_index=priority_index, pages=size),
                ),
            )
        )
        position += duration
    return ReferenceTrace(
        program_name=trace.program_name,
        pages=trace.pages,
        total_pages=trace.total_pages,
        directives=events,
        array_pages=dict(trace.array_pages),
        truncated=trace.truncated,
    )
