"""Page-aligned, column-major memory layout for a program's arrays.

Each declared array starts on a fresh page (so AVS values from the
analysis are exact) and occupies AVS consecutive pages.  Scalars,
constants, and code are assumed permanently resident and occupy no
simulated pages, following the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.parameters import PageConfig
from repro.frontend.symbols import ArrayInfo, SymbolTable


@dataclass(frozen=True)
class ArrayPlacement:
    """Placement of one array in the virtual page space."""

    info: ArrayInfo
    first_page: int
    page_count: int

    @property
    def last_page(self) -> int:
        return self.first_page + self.page_count - 1


class MemoryLayout:
    """Maps (array, element) to a global virtual page number."""

    def __init__(self, symbols: SymbolTable, page_config: PageConfig = None):
        self.page_config = page_config or PageConfig()
        self.placements: Dict[str, ArrayPlacement] = {}
        next_page = 0
        for name in symbols.array_order():
            info = symbols.arrays[name]
            count = self.page_config.array_virtual_size(info)
            self.placements[name] = ArrayPlacement(
                info=info, first_page=next_page, page_count=count
            )
            next_page += count
        self.total_pages = next_page

    def page_of(self, array: str, indices: Tuple[int, ...]) -> int:
        """Global page of a (1-based) element access."""
        placement = self.placements[array]
        linear = placement.info.linear_index(indices)
        return placement.first_page + self.page_config.page_of_element(linear)

    def page_of_linear(self, array: str, linear: int) -> int:
        """Global page of a 0-based linear element offset."""
        placement = self.placements[array]
        if not 0 <= linear < placement.info.element_count:
            raise ValueError(f"linear offset {linear} out of range for {array}")
        return placement.first_page + self.page_config.page_of_element(linear)

    def pages_of_array(self, array: str) -> range:
        """All global pages occupied by ``array``."""
        placement = self.placements[array]
        return range(placement.first_page, placement.first_page + placement.page_count)

    def array_of_page(self, page: int) -> str:
        """Name of the array owning a global page (for diagnostics)."""
        for name, placement in self.placements.items():
            if placement.first_page <= page <= placement.last_page:
                return name
        raise ValueError(f"page {page} is outside every array")
