"""Vectorized trace compilation for DO-loop nests (the affine fast path).

The tree-walking interpreter emits one page reference per array-element
access, costing several microseconds of Python dispatch each.  Most of
the references in the paper's nine workloads come from DO-loop nests
whose control flow is data independent: the loop bounds, the index
expressions, and (where it matters) the arithmetic can all be evaluated
for *every iteration at once* with numpy.  This module does exactly
that: given a DO loop about to execute, it tries to

1. enumerate every iteration of the nest level by level (broadcasted
   index grids, ragged via ``repeat``/``arange``),
2. evaluate each array subscript as an int64 vector, validate bounds,
   and turn column-major offsets into page ids in bulk,
3. interleave the per-statement reference slots back into sequential
   execution order with one packed-radix sort,
4. splice ALLOCATE/UNLOCK directive events at their exact positions, and
5. commit scalars, array stores, the operation budget, and the
   reference-cap truncation *exactly* as the interpreter would have.

Anything the vectorized evaluator cannot reproduce bit-for-bit —
data-dependent control flow, loop-carried scalar dependences beyond the
accumulator idiom, aliasing array updates, value-dependent errors —
raises the internal :class:`_Fallback` before any state is touched, and
the interpreter simply runs the nest as before (inner loops of a
rejected nest get their own chance when the interpreter reaches them).

The analysis leans on *trace relevance* ("taint"): a name can influence
the trace only by flowing into a loop bound, a subscript, a condition,
or an error-raising operation.  Assignments to irrelevant names are
compiled ref-only — their page references are emitted but the values
are never computed, which is what makes fully data-independent kernels
(relaxation sweeps, matrix products) almost free.  Assignments to
relevant names are evaluated exactly (int64/float64 kinds, FORTRAN
integer division, ``math``-equivalent intrinsics via object loops), so
committed state is indistinguishable from interpretation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.frontend import ast
from repro.tracegen.events import DirectiveEvent, DirectiveKind

__all__ = ["TraceCompiler", "trace_relevant_names"]


class _Fallback(Exception):
    """Internal: this nest (or this binding of it) cannot be compiled."""


#: Intrinsics that cannot raise for in-range int/float arguments and
#: whose *values* therefore only matter when the target is relevant.
_SAFE_INTRINSICS = {
    "ABS", "IABS", "FLOAT", "REAL", "DBLE", "SIGN", "ISIGN",
    "MIN", "MAX", "MIN0", "MAX0", "AMIN1", "AMAX1",
}

#: arity spec: exact count or (min, None) for variadic
_INTRINSIC_ARITY = {
    "SQRT": 1, "ABS": 1, "IABS": 1, "EXP": 1, "SIN": 1, "COS": 1,
    "TAN": 1, "ATAN": 1, "LOG": 1, "ALOG": 1, "LOG10": 1,
    "FLOAT": 1, "REAL": 1, "DBLE": 1, "INT": 1, "IFIX": 1, "NINT": 1,
    "MOD": 2, "AMOD": 2, "SIGN": 2, "ISIGN": 2,
    "MIN": (2, None), "MAX": (2, None), "MIN0": (2, None),
    "MAX0": (2, None), "AMIN1": (2, None), "AMAX1": (2, None),
}

_UNARY_MATH = {
    "SQRT": math.sqrt, "EXP": math.exp, "SIN": math.sin, "COS": math.cos,
    "TAN": math.tan, "ATAN": math.atan, "LOG": math.log, "ALOG": math.log,
    "LOG10": math.log10,
}

#: |int| beyond this we refuse to vectorize (int64 headroom)
_INT_LIMIT = 1 << 62
#: ints above this are not exactly representable as float64
_FLOAT_EXACT_INT = 1 << 53
#: cap on enumerated iterations of one nest binding (memory guard)
_MAX_INSTANCES = 40_000_000


def _reads_of(expr: ast.Expr) -> Set[str]:
    """Names (scalars and arrays) read anywhere inside ``expr``."""
    names: Set[str] = set()
    for node in ast.walk_expressions(expr):
        if isinstance(node, ast.Var):
            names.add(node.name)
        elif isinstance(node, ast.ArrayRef):
            names.add(node.name)
    return names


def trace_relevant_names(program: ast.Program) -> frozenset:
    """Names whose run-time values can influence the reference trace.

    Seeds: names read in DO bounds, DO WHILE / IF conditions, array
    subscripts, divisors, ``**`` operands, and arguments of intrinsics
    that can raise.  Closure: assigning a relevant name makes every name
    read by that assignment relevant (name-level, flow-insensitive —
    conservative, which is the safe direction).
    """
    seeds: Set[str] = set()
    edges: Dict[str, Set[str]] = {}

    def seed_expr(expr: Optional[ast.Expr]) -> None:
        if expr is not None:
            seeds.update(_reads_of(expr))

    for stmt in program.walk_statements():
        if isinstance(stmt, ast.DoLoop):
            seed_expr(stmt.start)
            seed_expr(stmt.end)
            seed_expr(stmt.step)
        elif isinstance(stmt, ast.WhileLoop):
            seed_expr(stmt.cond)
        elif isinstance(stmt, ast.IfBlock):
            for cond, _body in stmt.branches:
                seed_expr(cond)
        elif isinstance(stmt, ast.LogicalIf):
            seed_expr(stmt.cond)
        if isinstance(stmt, ast.Assign):
            target = stmt.target
            name = target.name if isinstance(target, (ast.Var, ast.ArrayRef)) else None
            if name is not None:
                reads = _reads_of(stmt.expr)
                if isinstance(target, ast.ArrayRef):
                    for ix in target.indices:
                        reads |= _reads_of(ix)
                edges.setdefault(name, set()).update(reads)
        for expr in _statement_exprs(stmt):
            for node in ast.walk_expressions(expr):
                if isinstance(node, ast.ArrayRef):
                    for ix in node.indices:
                        seeds.update(_reads_of(ix))
                elif isinstance(node, ast.BinOp):
                    if node.op == "/":
                        seeds.update(_reads_of(node.right))
                    elif node.op == "**":
                        seeds.update(_reads_of(node.left))
                        seeds.update(_reads_of(node.right))
                elif isinstance(node, ast.Call):
                    if node.name not in _SAFE_INTRINSICS:
                        for arg in node.args:
                            seeds.update(_reads_of(arg))

    tainted = set(seeds)
    work = list(seeds)
    while work:
        name = work.pop()
        for read in edges.get(name, ()):
            if read not in tainted:
                tainted.add(read)
                work.append(read)
    return frozenset(tainted)


def _statement_exprs(stmt: ast.Stmt) -> List[ast.Expr]:
    """Expressions a statement evaluates directly (not nested stmts)."""
    if isinstance(stmt, ast.Assign):
        return [stmt.expr, stmt.target]
    if isinstance(stmt, ast.DoLoop):
        exprs = [stmt.start, stmt.end]
        if stmt.step is not None:
            exprs.append(stmt.step)
        return exprs
    if isinstance(stmt, ast.WhileLoop):
        return [stmt.cond]
    if isinstance(stmt, ast.IfBlock):
        return [c for c, _b in stmt.branches if c is not None]
    if isinstance(stmt, ast.LogicalIf):
        return [stmt.cond] + _statement_exprs(stmt.stmt)
    if isinstance(stmt, ast.Print):
        return list(stmt.items)
    if isinstance(stmt, ast.CallStmt):
        return list(stmt.args)
    return []


def _expr_refs(expr: ast.Expr):
    """ArrayRef nodes of ``expr`` in interpreter evaluation order.

    Mirrors ``Interpreter._eval``: subscript sub-references fire before
    the reference itself; binary operands left before right.
    """
    if isinstance(expr, ast.ArrayRef):
        for ix in expr.indices:
            yield from _expr_refs(ix)
        yield expr
    elif isinstance(expr, (ast.BinOp, ast.Compare, ast.LogicalOp)):
        yield from _expr_refs(expr.left)
        yield from _expr_refs(expr.right)
    elif isinstance(expr, ast.UnaryOp):
        yield from _expr_refs(expr.operand)
    elif isinstance(expr, ast.Call):
        for arg in expr.args:
            yield from _expr_refs(arg)


def _stmt_ref_exprs(stmt: ast.Stmt) -> List[ast.ArrayRef]:
    """Reference slots of one statement execution, in emission order."""
    refs: List[ast.ArrayRef] = []
    if isinstance(stmt, ast.Assign):
        refs.extend(_expr_refs(stmt.expr))
        if isinstance(stmt.target, ast.ArrayRef):
            refs.extend(_expr_refs(stmt.target))
    elif isinstance(stmt, ast.Print):
        for item in stmt.items:
            refs.extend(_expr_refs(item))
    return refs


class TraceCompiler:
    """Per-interpreter compiler: intercepts DO loops and executes
    compilable nests in bulk.  Constructed once per
    :class:`~repro.tracegen.interpreter.Interpreter`."""

    def __init__(self, interp) -> None:
        self.it = interp
  # LOCK resolution depends on the most-recently-touched page of
  # each array, a sequential notion the batch evaluator does not
  # model; instrumentation plans that pin pages run interpreted.
        plan = interp.plan
        self.enabled = plan is None or not plan.locks_before
        self.tainted = (
            trace_relevant_names(interp.program) if self.enabled else frozenset()
        )
        self._legal: Dict[int, bool] = {}
        #: loop_id -> (successful binds, dynamic fallbacks)
        self._score: Dict[int, Tuple[int, int]] = {}
        #: perf counters (surfaced in reports/benchmarks)
        self.compiled_nests = 0
        self.compiled_refs = 0
        self.fallback_binds = 0

  # -- entry point --------------------------------------------------------

    def try_execute(self, loop: ast.DoLoop) -> bool:
        """Execute ``loop`` in bulk if possible.  True on success (the
        interpreter must then skip the loop); False leaves all state
        untouched so the interpreter can run it normally."""
        if not self.enabled or not self._static_legal(loop):
            return False
        wins, losses = self._score.get(loop.loop_id, (0, 0))
        if losses >= 4 and not wins:
            return False  # this nest never binds; stop burning time on it
        try:
            batch = _Binder(self, loop).run()
        except _Fallback:
            self.fallback_binds += 1
            self._score[loop.loop_id] = (wins, losses + 1)
            return False
        self._score[loop.loop_id] = (wins + 1, losses)
        self._commit(batch)
        return True

  # -- static legality ----------------------------------------------------

    def _static_legal(self, loop: ast.DoLoop) -> bool:
        cached = self._legal.get(loop.loop_id)
        if cached is not None:
            return cached
        ok = self._check_nest(loop)
        self._legal[loop.loop_id] = ok
        return ok

    def _check_nest(self, root: ast.DoLoop) -> bool:
        symbols = self.it.symbols
        for stmt in _walk_nest(root):
            if isinstance(stmt, (ast.WhileLoop, ast.IfBlock, ast.Stop,
                                 ast.ExitLoop, ast.CallStmt, ast.Return)):
                return False
            if isinstance(stmt, ast.LogicalIf) and not isinstance(
                stmt.stmt, (ast.Assign, ast.Continue)
            ):
                return False
            if not isinstance(
                stmt, (ast.Assign, ast.DoLoop, ast.LogicalIf, ast.Continue,
                       ast.Print)
            ):
                return False
            for expr in _statement_exprs(stmt):
                if not self._check_expr(expr, symbols):
                    return False
        return True

    def _check_expr(self, expr: ast.Expr, symbols) -> bool:
        for node in ast.walk_expressions(expr):
            if isinstance(node, ast.ArrayRef):
                info = symbols.arrays.get(node.name)
                if info is None or info.rank != len(node.indices):
                    return False
            elif isinstance(node, ast.Call):
                arity = _INTRINSIC_ARITY.get(node.name)
                if arity is None:
                    return False
                if isinstance(arity, int):
                    if len(node.args) != arity:
                        return False
                elif len(node.args) < arity[0]:
                    return False
            elif isinstance(node, ast.LogicalOp):
  # The interpreter short-circuits: the right side must be
  # free of references and of operations that could raise,
  # or skipping it would be observable.
                if any(True for _ in _expr_refs(node.right)):
                    return False
                if not _error_free(node.right):
                    return False
            elif isinstance(node, ast.BinOp) and node.op not in (
                "+", "-", "*", "/", "**"
            ):
                return False
        return True

  # -- commit -------------------------------------------------------------

    def _commit(self, batch: "_Batch") -> None:
        it = self.it
        it._refs.extend(batch.pages)
        it._events.extend(batch.events)
        self.compiled_nests += 1
        self.compiled_refs += len(batch.pages)
        if batch.truncated:
            it._truncated = True
            from repro.tracegen.interpreter import _TraceFull

            raise _TraceFull()
        it._operations += batch.nest_ops
        it.scalars.update(batch.scalars)
        for name, offsets, values in batch.array_stores:
            it.arrays[name][offsets] = values


def _walk_nest(root: ast.DoLoop):
    yield from ast._walk(root.body)


def _error_free(expr: ast.Expr) -> bool:
    """True when evaluating ``expr`` can never raise (given in-bounds
    subscripts, which are checked separately)."""
    for node in ast.walk_expressions(expr):
        if isinstance(node, ast.BinOp) and node.op in ("/", "**"):
            return False
        if isinstance(node, ast.Call) and node.name not in _SAFE_INTRINSICS:
            return False
    return True


class _Batch:
    """Everything one compiled nest binding commits, fully materialized
    and validated before any interpreter state changes."""

    __slots__ = (
        "pages", "events", "truncated", "nest_ops", "scalars", "array_stores",
    )

    def __init__(self, pages, events, truncated, nest_ops, scalars, array_stores):
        self.pages = pages
        self.events = events
        self.truncated = truncated
        self.nest_ops = nest_ops
        self.scalars = scalars
        self.array_stores = array_stores


class _Ctx:
    """One loop-body context: the instances of a loop's body across the
    whole binding, in execution order."""

    __slots__ = (
        "idx", "depth", "parent", "parent_idx", "loop", "var", "var_values",
        "counts", "n", "cols", "chain", "final_values", "max_trip", "body",
    )

    def __init__(self, idx, depth, parent, parent_idx, loop, var_values,
                 counts, cols, chain, body):
        self.idx = idx
        self.depth = depth
        self.parent = parent  # parent ctx index (None for virtual)
        self.parent_idx = parent_idx  # instance -> parent instance (int64)
        self.loop = loop  # DoLoop (None for the virtual root)
        self.var = loop.var if loop is not None else None
        self.var_values = var_values  # int64, per instance
        self.counts = counts  # trips per parent instance (int64)
        self.n = int(var_values.shape[0]) if var_values is not None else 1
        self.cols = cols  # key columns, each per instance
        self.chain = chain  # tuple of ctx indices root..self
        self.final_values = None  # loop var after normal termination
        self.max_trip = int(counts.max()) if counts is not None and len(counts) else 0
        self.body = body


class _Def:
    """Latest processed definition of a scalar name."""

    __slots__ = ("ctx", "values", "kind", "guarded", "acc_seed_ctx",
                 "acc_seed_values", "acc_seed_kind")

    def __init__(self, ctx, values, kind, guarded=False):
        self.ctx = ctx  # ctx index
        self.values = values  # per-instance ndarray, or None (irrelevant)
        self.kind = kind  # 'i' | 'f' | None
        self.guarded = guarded
        self.acc_seed_ctx = -2  # -2: not an accumulator
        self.acc_seed_values = None
        self.acc_seed_kind = None


class _Binder:
    """Evaluates one execution of a nest in bulk.

    All work happens on private buffers; nothing touches interpreter
    state, so raising :class:`_Fallback` at any point is free.  The
    result is a :class:`_Batch` that the compiler commits atomically.
    """

    def __init__(self, comp: TraceCompiler, root: ast.DoLoop) -> None:
        self.comp = comp
        self.it = comp.it
        self.root = root
        self.layout = self.it.layout
        self.epp = self.it.page_config.elements_per_page
        self.ctxs: List[_Ctx] = []
        self.ctx_of_loop: Dict[int, int] = {}
        self.scalar_state: Dict[str, _Def] = {}
        self.processed: Set[int] = set()  # uids of executed def sites
        self.ref_groups: List[tuple] = []  # (ctx, pos, iter, slot, sel, pages)
  # evt_groups rows: (ctx, pos, iter, slot, kind, site, requests)
        self.evt_groups: List[tuple] = []
        self.candidates: List[tuple] = []  # (name, ctx, pos, iter, inst, value)
  # writer_recs: uid -> (ctx, sel, offs, offs_c, vals64)
        self.writer_recs: Dict[int, tuple] = {}
  # store_groups: array -> [(ctx, pos, sel, offs, vals)]
        self.store_groups: Dict[str, List[tuple]] = {}
        self.nest_ops = 0
        self.total_refs = 0
        self._anc_cache: Dict[Tuple[int, int], np.ndarray] = {}
  # static shape of the nest: scalar def sites and array writers,
  # each with its enclosing-loop chain (for carry-hazard checks)
        self.scalar_defs: Dict[str, List[Tuple[int, Tuple[int, ...]]]] = {}
        self.array_writers: Dict[str, List[tuple]] = {}
        self._collect_static(root, (root.loop_id,))

    def _collect_static(self, loop: ast.DoLoop, chain: Tuple[int, ...]) -> None:
        self.scalar_defs.setdefault(loop.var, []).append((id(loop), chain))
        for stmt in loop.body:
            inner = stmt.stmt if isinstance(stmt, ast.LogicalIf) else stmt
            if isinstance(inner, ast.Assign):
                guarded = inner is not stmt
                if isinstance(inner.target, ast.Var):
                    self.scalar_defs.setdefault(inner.target.name, []).append(
                        (id(inner), chain)
                    )
                else:
                    self.array_writers.setdefault(inner.target.name, []).append(
                        (id(inner), inner, chain, guarded)
                    )
            elif isinstance(stmt, ast.DoLoop):
                self._collect_static(stmt, chain + (stmt.loop_id,))

  # -- driving ------------------------------------------------------------

    def run(self) -> _Batch:
        virtual = _Ctx(
            idx=0, depth=0, parent=None, parent_idx=None, loop=None,
            var_values=None, counts=None, cols=[], chain=(0,), body=None,
        )
        self.ctxs.append(virtual)
        budget = self.it.max_operations - self.it._operations
        self._process_loop(self.root, 0, 0)
        if self.nest_ops > budget:
            raise _Fallback  # the interpreter must raise mid-nest
        return self._materialize()

    def _process_loop(self, loop: ast.DoLoop, pctx_idx: int, pos: int) -> None:
        pctx = self.ctxs[pctx_idx]
        plan = self.it.plan
        slot = 0
        if plan is not None:
            allocate = plan.allocates.get(loop.loop_id)
            if allocate is not None:
                self.evt_groups.append(
                    (pctx_idx, pos, 0, slot, DirectiveKind.ALLOCATE,
                     loop.loop_id, allocate.requests)
                )
            slot = 1
  # Bounds evaluate once per entry, in the parent context; any
  # references inside them fire at the entry marker.
        stash: Dict[int, np.ndarray] = {}
        bounds = [loop.start, loop.end] + ([loop.step] if loop.step is not None else [])
        for bound in bounds:
            slot = self._walk_refs(bound, pctx_idx, pos, 0, slot, None, stash)
        start = self._int_vec(self._eval(loop.start, pctx_idx, None, stash))
        end = self._int_vec(self._eval(loop.end, pctx_idx, None, stash))
        if loop.step is not None:
            step = self._int_vec(self._eval(loop.step, pctx_idx, None, stash))
        else:
            step = np.ones(pctx.n, dtype=np.int64)
        if (step == 0).any():
            raise _Fallback  # interpreter raises "DO step of zero"
        if _imax(start) > 1 << 31 or _imax(end) > 1 << 31 or _imax(step) > 1 << 31:
            raise _Fallback
        trips = np.maximum(0, (end - start + step) // step)
        n = int(trips.sum())
        if n > _MAX_INSTANCES:
            raise _Fallback
        parent_idx = np.repeat(np.arange(pctx.n, dtype=np.int64), trips)
        group_start = np.zeros(pctx.n, dtype=np.int64)
        np.cumsum(trips[:-1], out=group_start[1:])
        within = np.arange(n, dtype=np.int64) - group_start[parent_idx]
        var_values = start[parent_idx] + step[parent_idx] * within
        cols = [c[parent_idx] for c in pctx.cols]
        cols.append(np.full(n, pos, dtype=np.int64))
        cols.append(within + 1)
        ctx = _Ctx(
            idx=len(self.ctxs), depth=pctx.depth + 1, parent=pctx_idx,
            parent_idx=parent_idx, loop=loop, var_values=var_values,
            counts=trips, cols=cols, chain=pctx.chain + (len(self.ctxs),),
            body=loop.body,
        )
        self.ctxs.append(ctx)
        self.ctx_of_loop[loop.loop_id] = ctx.idx
        self.processed.add(id(loop))
        self.scalar_state[loop.var] = _Def(ctx.idx, var_values, "i")
        self._process_body(loop.body, ctx.idx)
  # Normal termination leaves the variable one step past the end,
  # even for zero-trip loops (the interpreter's for/else).
        finals = start + trips * step
        ctx.final_values = finals
        self.scalar_state[loop.var] = _Def(pctx_idx, finals, "i")
        if pctx.n:
            self.candidates.append(
                (loop.var, pctx_idx, pos, ctx.max_trip + 1, pctx.n - 1,
                 int(finals[-1]))
            )
        if plan is not None and loop.loop_id in plan.unlocks_after:
            self.evt_groups.append(
                (pctx_idx, pos, ctx.max_trip + 1, 0, DirectiveKind.UNLOCK,
                 loop.loop_id, None)
            )

    def _process_body(self, body: List[ast.Stmt], ctx_idx: int) -> None:
        ctx = self.ctxs[ctx_idx]
        self.nest_ops += ctx.n * len(body)
        for pos, stmt in enumerate(body):
            if isinstance(stmt, ast.Continue):
                continue
            if isinstance(stmt, ast.DoLoop):
                self._process_loop(stmt, ctx_idx, pos)
            elif isinstance(stmt, ast.Assign):
                self._process_assign(stmt, ctx_idx, pos, 0, None)
            elif isinstance(stmt, ast.LogicalIf):
                self._process_logical_if(stmt, ctx_idx, pos)
            elif isinstance(stmt, ast.Print):
                stash: Dict[int, np.ndarray] = {}
                slot = 0
                for item in stmt.items:
                    slot = self._walk_refs(item, ctx_idx, pos, None, slot, None, stash)
                for item in stmt.items:
                    self._check_effects(item, ctx_idx, None, stash)
            else:  # pragma: no cover - excluded by _check_nest
                raise _Fallback

    def _process_logical_if(self, stmt: ast.LogicalIf, ctx_idx: int, pos: int) -> None:
        stash: Dict[int, np.ndarray] = {}
        slot = self._walk_refs(stmt.cond, ctx_idx, pos, None, 0, None, stash)
        _k, cond = self._eval(stmt.cond, ctx_idx, None, stash)
        mask = cond != 0
        taken = int(mask.sum())
        self.nest_ops += taken
        if isinstance(stmt.stmt, ast.Continue):
            return
        if taken == len(mask):
            self._process_assign(stmt.stmt, ctx_idx, pos, slot, None)
        elif taken == 0:
            self._mark_def(stmt.stmt)
        else:
            sel = np.nonzero(mask)[0]
            self._process_assign(stmt.stmt, ctx_idx, pos, slot, sel, guarded=True)

    def _mark_def(self, stmt: ast.Assign) -> None:
        """A guarded assignment that never fired still counts as a
        processed def site (it can no longer carry values forward)."""
        self.processed.add(id(stmt))

    def _process_assign(self, stmt: ast.Assign, ctx_idx: int, pos: int,
                        slot0: int, sel, guarded: bool = False) -> None:
        stash: Dict[int, np.ndarray] = {}
        slot = self._walk_refs(stmt.expr, ctx_idx, pos, None, slot0, sel, stash)
        target = stmt.target
        if isinstance(target, ast.ArrayRef):
            for ix in target.indices:
                slot = self._walk_refs(ix, ctx_idx, pos, None, slot, sel, stash)
            t_offs, t_pages = self._offsets_pages(target, ctx_idx, sel, stash)
            self._emit_ref(ctx_idx, pos, None, slot, sel, t_pages)
            self._finish_array_store(stmt, ctx_idx, pos, sel, t_offs, stash)
            return
        self._finish_scalar_def(stmt, ctx_idx, pos, sel, guarded, stash)

    def _finish_array_store(self, stmt, ctx_idx, pos, sel, offs, stash) -> None:
        name = stmt.target.name
        if name in self.comp.tainted:
            kind, vals = self._eval(stmt.expr, ctx_idx, sel, stash)
            vals64 = _to_float(kind, vals)
            self.store_groups.setdefault(name, []).append(
                (ctx_idx, pos, sel, offs, vals64)
            )
            self.writer_recs[id(stmt)] = (ctx_idx, sel, offs, vals64)
        else:
            self._check_effects(stmt.expr, ctx_idx, sel, stash)
            self.writer_recs[id(stmt)] = (ctx_idx, sel, offs, None)
        self.processed.add(id(stmt))

    def _finish_scalar_def(self, stmt, ctx_idx, pos, sel, guarded, stash) -> None:
        name = stmt.target.name
        ctx = self.ctxs[ctx_idx]
        if name not in self.comp.tainted:
            self._check_effects(stmt.expr, ctx_idx, sel, stash)
            prior = self.scalar_state.get(name)
            if prior is None or not guarded:
                self.scalar_state[name] = _Def(ctx_idx, None, None, guarded=guarded)
            inst = int(sel[-1]) if sel is not None else ctx.n - 1
            if ctx.n and (sel is None or len(sel)):
                self.candidates.append((name, ctx_idx, pos, None, inst, 0.0))
            self.processed.add(id(stmt))
            return
        if guarded:
            prior = self.scalar_state.get(name)
            if (
                prior is None or prior.values is None
                or prior.ctx != ctx_idx or prior.guarded
            ):
                raise _Fallback  # no same-instance dominating value
            kind, vals = self._eval(stmt.expr, ctx_idx, sel, stash)
            if kind != prior.kind:
                raise _Fallback  # per-instance kind would diverge
            merged = prior.values.copy()
            merged[sel] = vals
            self.scalar_state[name] = _Def(ctx_idx, merged, kind)
            self.candidates.append(
                (name, ctx_idx, pos, None, int(sel[-1]), _pyval(kind, vals[-1]))
            )
            self.processed.add(id(stmt))
            return
        acc = self._accumulator_shape(stmt, name)
        if acc is not None and self._acc_applicable(stmt, name, ctx_idx):
            self._process_accumulator(stmt, name, ctx_idx, pos, acc, stash)
            return
        kind, vals = self._eval(stmt.expr, ctx_idx, None, stash)
        self.scalar_state[name] = _Def(ctx_idx, vals, kind)
        if ctx.n:
            self.candidates.append(
                (name, ctx_idx, pos, None, ctx.n - 1, _pyval(kind, vals[-1]))
            )
        self.processed.add(id(stmt))

  # -- references ---------------------------------------------------------

    def _walk_refs(self, expr, ctx_idx, pos, iter_val, slot, sel, stash) -> int:
        """Emit one ref group per array reference in ``expr``, in the
        interpreter's evaluation order, stashing element offsets for
        later value reads.  Returns the next free slot number."""
        for ref in _expr_refs(expr):
            offs, pages = self._offsets_pages(ref, ctx_idx, sel, stash)
            stash[id(ref)] = offs
            self._emit_ref(ctx_idx, pos, iter_val, slot, sel, pages)
            slot += 1
        return slot

    def _emit_ref(self, ctx_idx, pos, iter_val, slot, sel, pages) -> None:
        self.ref_groups.append((ctx_idx, pos, iter_val, slot, sel, pages))
        self.total_refs += len(pages)

    def _offsets_pages(self, ref, ctx_idx, sel, stash):
        placement = self.layout.placements.get(ref.name)
        if placement is None:
            raise _Fallback
        info = placement.info
        iv = self._int_vec(self._eval(ref.indices[0], ctx_idx, sel, stash))
        if iv.size and (iv.min() < 1 or iv.max() > info.rows):
            raise _Fallback  # interpreter raises a subscript error
        if info.rank == 2:
            jv = self._int_vec(self._eval(ref.indices[1], ctx_idx, sel, stash))
            if jv.size and (jv.min() < 1 or jv.max() > info.columns):
                raise _Fallback
            linear = (jv - 1) * info.rows + (iv - 1)
        else:
            linear = iv - 1
        pages = placement.first_page + linear // self.epp
        return linear, pages

  # -- expression evaluation ----------------------------------------------

    def _int_vec(self, kv) -> np.ndarray:
        """The interpreter's ``_int_value``: ints pass, integral floats
        convert, anything else is an error (so we fall back)."""
        kind, vals = kv
        if kind == "i":
            return vals
        if vals.size and (
            not np.isfinite(vals).all()
            or (np.trunc(vals) != vals).any()
            or np.abs(vals).max() >= _INT_LIMIT
        ):
            raise _Fallback
        return vals.astype(np.int64)

    def _out_n(self, ctx_idx, sel) -> int:
        return len(sel) if sel is not None else self.ctxs[ctx_idx].n

    def _eval(self, expr, ctx_idx, sel, stash):
        """Vectorized exact evaluation: returns ``(kind, values)`` with
        kind 'i' (int64, magnitudes < 2**62) or 'f' (float64), bitwise
        identical to the interpreter's per-instance results."""
        n = self._out_n(ctx_idx, sel)
        if isinstance(expr, ast.Num):
            v = expr.value
            if isinstance(v, int):
                if abs(v) >= _INT_LIMIT:
                    raise _Fallback
                return ("i", np.full(n, v, dtype=np.int64))
            return ("f", np.full(n, v, dtype=np.float64))
        if isinstance(expr, ast.Var):
            return self._resolve(expr.name, ctx_idx, sel)
        if isinstance(expr, ast.LogicalLit):
            return ("i", np.full(n, 1 if expr.value else 0, dtype=np.int64))
        if isinstance(expr, ast.ArrayRef):
            offs = stash.get(id(expr))
            if offs is None:  # pragma: no cover - walk order guarantees this
                raise _Fallback
            return self._arr_read(expr.name, offs, ctx_idx, sel)
        if isinstance(expr, ast.UnaryOp):
            kind, vals = self._eval(expr.operand, ctx_idx, sel, stash)
            if expr.op == ".NOT.":
                return ("i", (vals == 0).astype(np.int64))
            return (kind, -vals)
        if isinstance(expr, ast.BinOp):
            lkv = self._eval(expr.left, ctx_idx, sel, stash)
            rkv = self._eval(expr.right, ctx_idx, sel, stash)
            return self._binop(expr.op, lkv, rkv)
        if isinstance(expr, ast.Compare):
            lk, lv = self._eval(expr.left, ctx_idx, sel, stash)
            rk, rv = self._eval(expr.right, ctx_idx, sel, stash)
            if lk != rk:
                lv = _to_float(lk, lv)
                rv = _to_float(rk, rv)
            op = expr.op
            if op == "<":
                res = lv < rv
            elif op == "<=":
                res = lv <= rv
            elif op == ">":
                res = lv > rv
            elif op == ">=":
                res = lv >= rv
            elif op == "==":
                res = lv == rv
            elif op == "/=":
                res = lv != rv
            else:
                raise _Fallback
            return ("i", res.astype(np.int64))
        if isinstance(expr, ast.LogicalOp):
            _lk, lv = self._eval(expr.left, ctx_idx, sel, stash)
            _rk, rv = self._eval(expr.right, ctx_idx, sel, stash)
            lb = lv != 0
            rb = rv != 0
            res = (lb & rb) if expr.op == ".AND." else (lb | rb)
            return ("i", res.astype(np.int64))
        if isinstance(expr, ast.Call):
            args = [self._eval(a, ctx_idx, sel, stash) for a in expr.args]
            return self._call(expr.name, args, n)
        raise _Fallback

    def _binop(self, op, lkv, rkv):
        lk, lv = lkv
        rk, rv = rkv
        both_int = lk == "i" and rk == "i"
        if op in ("+", "-"):
            if both_int:
                if _imax(lv) + _imax(rv) >= _INT_LIMIT:
                    raise _Fallback
                return ("i", lv + rv if op == "+" else lv - rv)
            lv, rv = _to_float(lk, lv), _to_float(rk, rv)
            return ("f", lv + rv if op == "+" else lv - rv)
        if op == "*":
            if both_int:
                if _imax(lv) * _imax(rv) >= _INT_LIMIT:
                    raise _Fallback
                return ("i", lv * rv)
            return ("f", _to_float(lk, lv) * _to_float(rk, rv))
        if op == "/":
            if both_int:
                if rv.size and (rv == 0).any():
                    raise _Fallback  # interpreter: division by zero
                q = np.abs(lv) // np.abs(rv)
                return ("i", np.where((lv >= 0) == (rv >= 0), q, -q))
            lv, rv = _to_float(lk, lv), _to_float(rk, rv)
            if rv.size and (rv == 0.0).any():
                raise _Fallback
            return ("f", lv / rv)
        if op == "**":
            return self._pow(lkv, rkv)
        raise _Fallback

    def _pow(self, lkv, rkv):
        """Python ``**`` semantics element by element.  Rare in the
        workloads, so an exact object-level loop is acceptable."""
        lk, lv = lkv
        rk, rv = rkv
        out = []
        int_only = True
        float_only = True
        for a, b in zip(lv.tolist(), rv.tolist()):
            if isinstance(a, int) and isinstance(b, int) and b > 128:
                raise _Fallback  # huge-integer blowup guard
            try:
                r = a**b
            except (OverflowError, ZeroDivisionError):
                raise _Fallback  # interpreter raises InterpreterError
            if isinstance(r, complex):
                raise _Fallback  # "negative base with fractional exponent"
            if isinstance(r, int):
                if abs(r) >= _INT_LIMIT:
                    raise _Fallback
                float_only = False
            else:
                int_only = False
            out.append(r)
        if not out:
            kind = "f" if "f" in (lk, rk) else "i"
            dtype = np.float64 if kind == "f" else np.int64
            return (kind, np.empty(0, dtype=dtype))
        if int_only:
            return ("i", np.array(out, dtype=np.int64))
        if float_only:
            return ("f", np.array(out, dtype=np.float64))
        raise _Fallback  # mixed result kinds in one vector

    def _call(self, name, args, n):
        if name == "SQRT":
            v = _to_float(*args[0])
            if v.size and not (v >= 0).all():
                raise _Fallback  # domain error (or NaN) in interpreter
            return ("f", np.sqrt(v))
        fn = _UNARY_MATH.get(name)
        if fn is not None:
            v = _to_float(*args[0])
            try:
                out = np.frompyfunc(fn, 1, 1)(v)
            except (ValueError, OverflowError):
                raise _Fallback
            return ("f", out.astype(np.float64) if v.size else v)
        if name in ("ABS", "IABS"):
            k, v = args[0]
            return (k, np.abs(v))
        if name in ("MOD", "AMOD"):
            (lk, lv), (rk, rv) = args
            if lk == "i" and rk == "i":
                if rv.size and (rv == 0).any():
                    raise _Fallback
                q = np.abs(lv) // np.abs(rv)
                q = np.where((lv >= 0) == (rv >= 0), q, -q)
                return ("i", lv - q * rv)
            lv, rv = _to_float(lk, lv), _to_float(rk, rv)
            if lv.size and (np.isinf(lv).any() or (rv == 0.0).any()):
                raise _Fallback  # math.fmod raises ValueError
            return ("f", np.fmod(lv, rv))
        if name in ("MIN", "MAX", "MIN0", "MAX0", "AMIN1", "AMAX1"):
            kinds = {k for k, _ in args}
            if len(kinds) != 1:
                raise _Fallback  # python min/max returns a data-dependent kind
            kind = kinds.pop()
            vecs = [v for _, v in args]
            if kind == "f" and any(v.size and np.isnan(v).any() for v in vecs):
                raise _Fallback  # NaN ordering differs from np.minimum
            red = np.minimum if name in ("MIN", "MIN0", "AMIN1") else np.maximum
            out = vecs[0]
            for v in vecs[1:]:
                out = red(out, v)
            return (kind, out)
        if name in ("SIGN", "ISIGN"):
            (ak, av), (_bk, bv) = args
            mag = np.abs(av)
            return (ak, np.where(bv >= 0, mag, -mag))
        if name in ("FLOAT", "REAL", "DBLE"):
            return ("f", _to_float(*args[0]))
        if name in ("INT", "IFIX"):
            k, v = args[0]
            if k == "i":
                return ("i", v)
            if v.size and (
                not np.isfinite(v).all() or np.abs(v).max() >= _INT_LIMIT
            ):
                raise _Fallback
            return ("i", np.trunc(v).astype(np.int64))
        if name == "NINT":
            k, v = args[0]
            if k == "i":
                return ("i", v)
            if v.size and (
                not np.isfinite(v).all() or np.abs(v).max() >= _INT_LIMIT
            ):
                raise _Fallback
            return ("i", np.rint(v).astype(np.int64))
        raise _Fallback

  # -- scalar name resolution ---------------------------------------------

    def _chain_loops(self, ctx_idx) -> Tuple[int, ...]:
        return tuple(
            self.ctxs[c].loop.loop_id
            for c in self.ctxs[ctx_idx].chain
            if self.ctxs[c].loop is not None
        )

    def _compose_up(self, from_ctx, to_ctx, idx):
        c = from_ctx
        while c != to_ctx:
            ctx = self.ctxs[c]
            idx = ctx.parent_idx[idx]
            c = ctx.parent
        return idx

    def _anc_map(self, from_ctx, to_ctx):
        key = (from_ctx, to_ctx)
        m = self._anc_cache.get(key)
        if m is None:
            m = self._compose_up(
                from_ctx, to_ctx,
                np.arange(self.ctxs[from_ctx].n, dtype=np.int64),
            )
            self._anc_cache[key] = m
        return m

    def _common_ctx(self, a, b) -> int:
        ca, cb = self.ctxs[a].chain, self.ctxs[b].chain
        common = 0
        for x, y in zip(ca, cb):
            if x != y:
                break
            common += 1
        return ca[common - 1]

    def _carry_hazard(self, name, rec_ctx, read_ctx) -> bool:
        """True when an unprocessed (textually later) definition of
        ``name`` could execute, via an enclosing loop's next iteration,
        between the resolved definition and some read instance."""
        defs = self.scalar_defs.get(name)
        if not defs:
            return False
        read_loops = self._chain_loops(read_ctx)
        rec_loops = set(self._chain_loops(rec_ctx)) if rec_ctx is not None else set()
        for uid, d_chain in defs:
            if uid in self.processed:
                continue
            common = 0
            for x, y in zip(d_chain, read_loops):
                if x != y:
                    break
                common += 1
            for lid in read_loops[:common]:
                if lid in rec_loops:
                    continue  # re-defined every iteration of lid: dominated
                if self.ctxs[self.ctx_of_loop[lid]].max_trip > 1:
                    return True
        return False

    def _resolve(self, name, ctx_idx, sel):
        rec = self.scalar_state.get(name)
        if rec is not None and rec.values is None:
            raise _Fallback  # value requested for an untainted def
        if rec is None:
            if self._carry_hazard(name, 0, ctx_idx):
                raise _Fallback
            if name not in self.it.scalars:
                raise _Fallback  # interpreter: used before assignment
            v = self.it.scalars[name]
            n = self._out_n(ctx_idx, sel)
            if isinstance(v, int):
                if abs(v) >= _INT_LIMIT:
                    raise _Fallback
                return ("i", np.full(n, v, dtype=np.int64))
            return ("f", np.full(n, float(v), dtype=np.float64))
        if self._carry_hazard(name, rec.ctx, ctx_idx):
            raise _Fallback
        ctx = self.ctxs[ctx_idx]
        if rec.ctx == ctx_idx:
            return (rec.kind, rec.values if sel is None else rec.values[sel])
        if rec.ctx in ctx.chain:
            idx = sel if sel is not None else np.arange(ctx.n, dtype=np.int64)
            idx = self._compose_up(ctx_idx, rec.ctx, idx)
            return (rec.kind, rec.values[idx])
  # Definition is deeper or on a divergent (earlier) branch: the
  # read sees the last def instance executed before it -- resolved
  # per common-ancestor instance.
        a = self._common_ctx(rec.ctx, ctx_idx)
        anc = self._anc_map(rec.ctx, a)
        idx = sel if sel is not None else np.arange(ctx.n, dtype=np.int64)
        read_at_a = self._compose_up(ctx_idx, a, idx)
        ends = np.searchsorted(anc, read_at_a, side="right") - 1
        safe = np.maximum(ends, 0)
        if rec.acc_seed_ctx != -2:
            seed_ctx = rec.acc_seed_ctx
            sanc = self._anc_map(rec.ctx, seed_ctx)
            read_at_seed = self._compose_up(ctx_idx, seed_ctx, idx)
            valid = (ends >= 0) & (sanc[safe] == read_at_seed)
            if valid.all():
                return (rec.kind, rec.values[safe])
            if rec.acc_seed_kind != rec.kind:
                raise _Fallback  # pre-seed reads would change kind
            seed_vals = rec.acc_seed_values[read_at_seed]
            return (rec.kind, np.where(valid, rec.values[safe], seed_vals))
        if (ends < 0).any():
            raise _Fallback  # some read precedes every def instance
        if (anc[safe] != read_at_a).any() and len(self.scalar_defs.get(name, ())) != 1:
  # an ancestor instance with no def instance falls through to
  # an older definition we no longer have -- unless this site
  # is the only one, in which case the carry IS the value.
            raise _Fallback
        return (rec.kind, rec.values[ends])

    def _check_exists(self, name, ctx_idx, sel) -> None:
        """Reference-only mode: prove the interpreter would find a value
        for ``name`` at every instance (the value itself is irrelevant)."""
        if name in self.it.scalars:
            return
        rec = self.scalar_state.get(name)
        if rec is None or rec.guarded:
            raise _Fallback
        if rec.ctx == ctx_idx or rec.ctx in self.ctxs[ctx_idx].chain:
            return
        a = self._common_ctx(rec.ctx, ctx_idx)
        anc = self._anc_map(rec.ctx, a)
        if sel is not None:
            idx = sel
        else:
            idx = np.arange(self.ctxs[ctx_idx].n, dtype=np.int64)
        read_at_a = self._compose_up(ctx_idx, a, idx)
        if (np.searchsorted(anc, read_at_a, side="right") == 0).any():
            raise _Fallback

    def _check_effects(self, expr, ctx_idx, sel, stash) -> None:
        """Reference-only mode: prove evaluating ``expr`` cannot raise.
        Subscript expressions were already evaluated exactly during the
        slot walk, so array references need no further checks."""
        if isinstance(expr, (ast.Num, ast.LogicalLit, ast.ArrayRef)):
            return
        if isinstance(expr, ast.Var):
            self._check_exists(expr.name, ctx_idx, sel)
            return
        if isinstance(expr, ast.UnaryOp):
            self._check_effects(expr.operand, ctx_idx, sel, stash)
            return
        if isinstance(expr, (ast.Compare, ast.LogicalOp)):
            self._check_effects(expr.left, ctx_idx, sel, stash)
            self._check_effects(expr.right, ctx_idx, sel, stash)
            return
        if isinstance(expr, ast.BinOp):
            if expr.op == "/":
                self._check_effects(expr.left, ctx_idx, sel, stash)
                rk, rv = self._eval(expr.right, ctx_idx, sel, stash)
                if rv.size and (rv == 0).any():
                    raise _Fallback
                return
            if expr.op == "**":
                lkv = self._eval(expr.left, ctx_idx, sel, stash)
                rkv = self._eval(expr.right, ctx_idx, sel, stash)
                self._pow(lkv, rkv)
                return
            self._check_effects(expr.left, ctx_idx, sel, stash)
            self._check_effects(expr.right, ctx_idx, sel, stash)
            return
        if isinstance(expr, ast.Call):
            if expr.name in _SAFE_INTRINSICS:
                for a in expr.args:
                    self._check_effects(a, ctx_idx, sel, stash)
                return
            args = [self._eval(a, ctx_idx, sel, stash) for a in expr.args]
            self._call(expr.name, args, self._out_n(ctx_idx, sel))
            return
        raise _Fallback

  # -- loop-carried accumulators ------------------------------------------

    def _accumulator_shape(self, stmt, name):
        """``S = S + e`` / ``S = e + S`` / ``S = S - e`` with ``e`` not
        reading ``S``: returns ``(e, sign)`` or None."""
        expr = stmt.expr
        if not isinstance(expr, ast.BinOp) or expr.op not in ("+", "-"):
            return None
        left_is = isinstance(expr.left, ast.Var) and expr.left.name == name
        right_is = isinstance(expr.right, ast.Var) and expr.right.name == name
        if expr.op == "+":
            if left_is and name not in _reads_of(expr.right):
                return (expr.right, 1)
            if right_is and name not in _reads_of(expr.left):
                return (expr.left, 1)
        elif left_is and name not in _reads_of(expr.right):
            return (expr.right, -1)
        return None

    def _acc_applicable(self, stmt, name, ctx_idx) -> bool:
        for uid, _chain in self.scalar_defs.get(name, ()):
            if uid != id(stmt) and uid not in self.processed:
                return False
        rec = self.scalar_state.get(name)
        if rec is None:
            return name in self.it.scalars
        if rec.values is None:
            return False
  # the seed must be a per-ancestor-instance value fixed at entry
        return rec.ctx != ctx_idx and rec.ctx in self.ctxs[ctx_idx].chain

    def _process_accumulator(self, stmt, name, ctx_idx, pos, acc, stash) -> None:
        e, sign = acc
        ctx = self.ctxs[ctx_idx]
        ek, ev = self._eval(e, ctx_idx, None, stash)
        rec = self.scalar_state.get(name)
        if rec is None:
            v = self.it.scalars[name]
            seed_ctx = 0
            if isinstance(v, int):
                if abs(v) >= _INT_LIMIT:
                    raise _Fallback
                sk, sv = "i", np.full(1, v, dtype=np.int64)
            else:
                sk, sv = "f", np.full(1, float(v), dtype=np.float64)
        else:
            seed_ctx, sk, sv = rec.ctx, rec.kind, rec.values
        kind = "f" if "f" in (ek, sk) else "i"
        ev_p = ev if ek == kind else _to_float(ek, ev)
        sv_p = sv if sk == kind else _to_float(sk, sv)
        if sign < 0:
            ev_p = -ev_p
        anc = self._anc_map(ctx_idx, seed_ctx)
        ng = self.ctxs[seed_ctx].n
        if ctx.n:
            counts = np.bincount(anc, minlength=ng)
        else:
            counts = np.zeros(ng, dtype=np.int64)
        max_t = int(counts.max()) if ng else 0
        if ng * (max_t + 1) > 20_000_000:
            raise _Fallback  # rectangle too ragged to be worth it
        starts = np.searchsorted(anc, np.arange(ng, dtype=np.int64))
        within = np.arange(ctx.n, dtype=np.int64) - starts[anc]
        dtype = np.int64 if kind == "i" else np.float64
        rect = np.zeros((ng, max_t + 1), dtype=dtype)
        rect[:, 0] = sv_p
        rect[anc, within + 1] = ev_p
        if kind == "i" and rect.size:
            mags = np.abs(rect).astype(np.float64).cumsum(axis=1)
            if mags.max() >= float(_INT_LIMIT):
                raise _Fallback
        vals = rect.cumsum(axis=1)[anc, within + 1]
        new = _Def(ctx_idx, vals, kind)
        new.acc_seed_ctx = seed_ctx
        new.acc_seed_values = sv_p
        new.acc_seed_kind = sk
        self.scalar_state[name] = new
        if ctx.n:
            self.candidates.append(
                (name, ctx_idx, pos, None, ctx.n - 1, _pyval(kind, vals[-1]))
            )
        self.processed.add(id(stmt))

  # -- array value reads --------------------------------------------------

    def _early_name_ok(self, nm, ctx_idx) -> bool:
        """True when ``nm``'s value at a later statement of the same
        iteration provably equals its value now: either nest-invariant,
        or the variable of an active enclosing loop with no other defs."""
        sites = self.scalar_defs.get(nm)
        if sites is None:
            return nm in self.it.scalars
        for c in self.ctxs[ctx_idx].chain:
            loop = self.ctxs[c].loop
            if loop is not None and loop.var == nm:
                return all(uid == id(loop) for uid, _ in sites)
        return False

    def _arr_read(self, name, offs, ctx_idx, sel):
        """Exact value of an array read: pre-nest state plus any
        forwarding from writers processed so far; falls back whenever a
        write could interleave in a way we cannot replay in bulk."""
        cur = self.it.arrays[name][offs]
        for uid, stmt, chain, guarded in self.array_writers.get(name, ()):
            rec = self.writer_recs.get(uid)
            if rec is not None:
                w_ctx, w_sel, w_offs, w_vals = rec
                if w_ctx == ctx_idx and w_sel is None:
                    wo = w_offs if sel is None else w_offs[sel]
                    if wo.shape == offs.shape and (wo == offs).all():
                        cur = (w_vals if sel is None else w_vals[sel]).copy()
                        continue
                    if not _overlaps(offs, w_offs):
                        continue
                    raise _Fallback
                if _overlaps(offs, w_offs):
                    raise _Fallback  # cross-context interleaving
                continue
            if uid in self.processed:
                continue  # a guarded writer that never fired
  # Unprocessed: this writer runs later in the current
  # iteration (or deeper, not yet reached).
            if guarded or self.ctx_of_loop.get(chain[-1]) != ctx_idx:
                raise _Fallback
            tgt = stmt.target
            for ix in tgt.indices:
                if any(True for _ in _expr_refs(ix)):
                    raise _Fallback
                for nm in _reads_of(ix):
                    if nm in self.it.symbols.arrays:
                        raise _Fallback
                    if not self._early_name_ok(nm, ctx_idx):
                        raise _Fallback
            w_offs, _pages = self._offsets_pages(tgt, ctx_idx, None, {})
            wo = w_offs if sel is None else w_offs[sel]
            if wo.shape == offs.shape and (wo == offs).all():
  # each instance reads the very cell it will overwrite
  # later; safe iff no earlier instance already wrote it
                if _has_dups(w_offs):
                    raise _Fallback
                continue
            if not _overlaps(offs, w_offs):
                continue
            raise _Fallback
        return ("f", cur)

  # -- materialization ----------------------------------------------------

    def _materialize(self) -> _Batch:
        it = self.it
        cap = it.max_references - len(it._refs)
        truncated = self.total_refs >= cap
        width = max(len(c.cols) for c in self.ctxs) + 2
        radix = [1] * width
        for ctx in self.ctxs:
            for j, col in enumerate(ctx.cols):
                if len(col):
                    radix[j] = max(radix[j], int(col.max()) + 1)
            if ctx.loop is not None:
                j = len(ctx.cols) - 1
                radix[j] = max(radix[j], ctx.max_trip + 2)
        def bump(ctx_idx, pos, iter_val, slot):
            j = len(self.ctxs[ctx_idx].cols)
            radix[j] = max(radix[j], pos + 1)
            if iter_val is not None:
                radix[j + 1] = max(radix[j + 1], iter_val + 1)
            if slot is not None:
                radix[width - 1] = max(radix[width - 1], slot + 1)
        for g in self.ref_groups:
            bump(g[0], g[1], g[2], g[3])
        for g in self.evt_groups:
            bump(g[0], g[1], g[2], g[3])
        for name, ctx_idx, pos, iter_val, _inst, _val in self.candidates:
            bump(ctx_idx, pos, iter_val, None)
        for groups in self.store_groups.values():
            for ctx_idx, pos, _sel, _offs, _vals in groups:
                bump(ctx_idx, pos, None, None)
        S = [1] * width
        for j in range(width - 2, -1, -1):
            S[j] = S[j + 1] * radix[j + 1]
        if S[0] * radix[0] >= 1 << 63:
            raise _Fallback  # key space exceeds int64
        prefixes = []
        for ctx in self.ctxs:
            p = np.zeros(ctx.n, dtype=np.int64)
            for j, col in enumerate(ctx.cols):
                p += col * S[j]
            prefixes.append(p)

        def group_keys(ctx_idx, pos, iter_val, slot, sel):
            j = len(self.ctxs[ctx_idx].cols)
            base = prefixes[ctx_idx]
            if sel is not None:
                base = base[sel]
            key = base + pos * S[j] + slot
            if iter_val is not None:
                key = key + iter_val * S[j + 1]
            return key

        empty_i = np.empty(0, dtype=np.int64)
        ref_keys = [empty_i]
        ref_pages = [empty_i]
        for ctx_idx, pos, iter_val, slot, sel, pages in self.ref_groups:
            ref_keys.append(group_keys(ctx_idx, pos, iter_val, slot, sel))
            ref_pages.append(pages)
        rk = np.concatenate(ref_keys)
        rp = np.concatenate(ref_pages)
        evt_keys = [empty_i]
        evt_gidx = [empty_i]
        for gi, (ctx_idx, pos, iter_val, slot, _kind, _site, _req) in enumerate(
            self.evt_groups
        ):
            keys = group_keys(ctx_idx, pos, iter_val, slot, None)
            evt_keys.append(keys)
            evt_gidx.append(np.full(len(keys), gi, dtype=np.int64))
        ek = np.concatenate(evt_keys)
        eg = np.concatenate(evt_gidx)
        nr = len(rk)
        order = np.argsort(np.concatenate([rk, ek]), kind="stable")
        is_evt = order >= nr
        pages_sorted = rp[order[~is_evt]]
        evt_local_pos = np.cumsum(~is_evt)[is_evt]
        evt_sorted_gidx = eg[order[is_evt] - nr]
        base = len(it._refs)
        events = []
        for local, gi in zip(evt_local_pos.tolist(), evt_sorted_gidx.tolist()):
            if truncated and local >= cap:
                break  # the trace fills before this event fires
            _c, _p, _iv, _s, kind, site, requests = self.evt_groups[gi]
            if kind is DirectiveKind.ALLOCATE:
                events.append(DirectiveEvent(
                    position=base + local, kind=kind, site=site,
                    requests=requests,
                ))
            else:
                events.append(DirectiveEvent(
                    position=base + local, kind=kind, site=site,
                    lock_pages=(),
                ))
        if truncated:
            return _Batch(pages_sorted[:cap].tolist(), events, True,
                          self.nest_ops, {}, [])
        best: Dict[str, Tuple[int, object]] = {}
        for name, ctx_idx, pos, iter_val, inst, val in self.candidates:
            j = len(self.ctxs[ctx_idx].cols)
            key = int(prefixes[ctx_idx][inst]) + pos * S[j]
            if iter_val is not None:
                key += iter_val * S[j + 1]
            old = best.get(name)
            if old is None or key > old[0]:
                best[name] = (key, val)
        scalars = {name: kv[1] for name, kv in best.items()}
        array_stores = []
        for name, groups in self.store_groups.items():
            keys_l, offs_l, vals_l = [empty_i], [empty_i], [np.empty(0)]
            for ctx_idx, pos, sel, offs, vals in groups:
                keys_l.append(group_keys(ctx_idx, pos, None, 0, sel))
                offs_l.append(offs)
                vals_l.append(vals)
            k = np.concatenate(keys_l)
            o = np.concatenate(offs_l)
            v = np.concatenate(vals_l)
            ordr = np.argsort(k, kind="stable")
            array_stores.append((name, o[ordr], v[ordr]))
        return _Batch(pages_sorted.tolist(), events, False, self.nest_ops,
                      scalars, array_stores)


def _overlaps(a: np.ndarray, b: np.ndarray) -> bool:
    """Do two offset vectors share any element?  Small vectors (the
    common case in per-bind nests) go through python sets, which beats
    np.isin's sort-based path by an order of magnitude."""
    if not a.size or not b.size:
        return False
    if len(a) + len(b) <= 512:
        return not set(a.tolist()).isdisjoint(b.tolist())
    return bool(np.isin(a, b).any())


def _has_dups(a: np.ndarray) -> bool:
    if len(a) <= 512:
        return len(set(a.tolist())) != len(a)
    return len(np.unique(a)) != len(a)


def _imax(v: np.ndarray) -> int:
    return int(np.abs(v).max()) if v.size else 0


def _to_float(kind: str, vals: np.ndarray) -> np.ndarray:
    if kind == "f":
        return vals
    if vals.size and int(np.abs(vals).max()) >= _FLOAT_EXACT_INT:
        raise _Fallback  # int -> float64 would round
    return vals.astype(np.float64)


def _pyval(kind: str, v) -> object:
    return int(v) if kind == "i" else float(v)
