"""Trace generation: executing a program to produce its page-reference
string.

The paper's evaluation replays "traces of array references" through a
virtual-memory simulator.  This package provides:

* :mod:`paging` — the page-aligned, column-major memory layout mapping
  array elements to global page numbers;
* :mod:`events` — the trace representation: a dense page-reference
  string plus sparse, position-stamped directive events;
* :mod:`interpreter` — a tree-walking interpreter for mini-FORTRAN that
  actually performs the numerics (so data-dependent control flow, e.g.
  convergence loops, behaves realistically) while recording one
  reference per array-element access and resolving directive events at
  their execution points.

Constants, scalars, and instructions generate no references: the paper
assumes they are "permanently resident in memory".
"""

from repro.tracegen.events import DirectiveEvent, DirectiveKind, ReferenceTrace
from repro.tracegen.interpreter import (
    ExecutionLimitError,
    Interpreter,
    generate_trace,
)
from repro.tracegen.paging import MemoryLayout

__all__ = [
    "DirectiveEvent",
    "DirectiveKind",
    "ExecutionLimitError",
    "Interpreter",
    "MemoryLayout",
    "ReferenceTrace",
    "generate_trace",
]
