"""Trace persistence: save/load reference traces with their directives.

The paper's methodology separates trace *generation* from trace
*consumption* ("Traces of array references were generated for 9
numerical programs … A virtual memory simulator is used to simulate
program behavior").  Persisting traces supports the same separation
here: generate once, replay many times (or on another machine), and
keep the directive events with the pages.

Format: a single ``.npz`` file holding the page array plus a JSON
header (program name, page space, array layout, truncation flag, and
the directive events with their ALLOCATE request lists).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.directives.model import AllocateRequest
from repro.tracegen.events import DirectiveEvent, DirectiveKind, ReferenceTrace

#: bumped on any incompatible change to the on-disk layout
#: (v2: companion sweep-array archives, version-stamped like traces)
FORMAT_VERSION = 2


def _event_to_dict(event: DirectiveEvent) -> dict:
    return {
        "position": event.position,
        "kind": event.kind.value,
        "site": event.site,
        "requests": [
            [r.priority_index, r.pages] for r in event.requests
        ],
        "lock_pages": list(event.lock_pages),
        "priority_index": event.priority_index,
    }


def _event_from_dict(data: dict) -> DirectiveEvent:
    return DirectiveEvent(
        position=int(data["position"]),
        kind=DirectiveKind(data["kind"]),
        site=int(data["site"]),
        requests=tuple(
            AllocateRequest(priority_index=int(pi), pages=int(x))
            for pi, x in data["requests"]
        ),
        lock_pages=tuple(int(p) for p in data["lock_pages"]),
        priority_index=int(data["priority_index"]),
    )


def save_trace(
    trace: ReferenceTrace, path: Union[str, Path], compress: bool = True
) -> Path:
    """Write ``trace`` to ``path`` (``.npz`` appended when missing).

    ``compress=False`` trades disk for wall time — right for cache
    files that are rewritten often, wrong for archival traces.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    header = {
        "format_version": FORMAT_VERSION,
        "program_name": trace.program_name,
        "total_pages": trace.total_pages,
        "truncated": trace.truncated,
        "array_pages": {
            name: [first, count]
            for name, (first, count) in trace.array_pages.items()
        },
        "directives": [_event_to_dict(d) for d in trace.directives],
    }
    writer = np.savez_compressed if compress else np.savez
    writer(
        path,
        pages=trace.pages,
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
    )
    return path


def load_trace(path: Union[str, Path]) -> ReferenceTrace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with np.load(path) as archive:
        try:
            pages = archive["pages"]
            header_bytes = archive["header"].tobytes()
        except KeyError as err:
            raise ValueError(f"{path} is not a saved trace: missing {err}") from None
    header = json.loads(header_bytes.decode("utf-8"))
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path} uses trace format {version}; this build reads "
            f"{FORMAT_VERSION}"
        )
    return ReferenceTrace(
        program_name=header["program_name"],
        pages=pages.astype(np.int32),
        total_pages=int(header["total_pages"]),
        directives=[_event_from_dict(d) for d in header["directives"]],
        array_pages={
            name: (int(first), int(count))
            for name, (first, count) in header["array_pages"].items()
        },
        truncated=bool(header["truncated"]),
    )


def save_sweeps(
    arrays: Dict[str, np.ndarray], path: Union[str, Path]
) -> Path:
    """Write precomputed sweep arrays (LRU distances, WS gaps, …) to a
    version-stamped ``.npz`` companion of a saved trace."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    stamped = dict(arrays)
    stamped["format_version"] = np.array(FORMAT_VERSION, dtype=np.int64)
    # Uncompressed: these are cache files, and deflate costs more wall
    # time per table run than the disk it saves.
    np.savez(path, **stamped)
    return path


def load_sweeps(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Read sweep arrays written by :func:`save_sweeps`."""
    path = Path(path)
    with np.load(path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    version = int(arrays.pop("format_version", -1))
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path} uses sweep format {version}; this build reads "
            f"{FORMAT_VERSION}"
        )
    return arrays
