"""Trace persistence: save/load reference traces with their directives.

The paper's methodology separates trace *generation* from trace
*consumption* ("Traces of array references were generated for 9
numerical programs … A virtual memory simulator is used to simulate
program behavior").  Persisting traces supports the same separation
here: generate once, replay many times (or on another machine), and
keep the directive events with the pages.

Two formats:

* a single ``.npz`` file holding the page array plus a JSON header
  (program name, page space, array layout, truncation flag, and the
  directive events with their ALLOCATE request lists) — right for
  traces that fit in RAM;
* a **sharded directory** (``manifest.json`` + fixed-size ``.npy``
  shards) written incrementally by :class:`ShardedTraceWriter` and read
  back mmap-backed by :func:`open_sharded_trace` — right for traces
  that must never be materialized whole.  The reader plugs directly
  into the streaming engine (:mod:`repro.vm.stream`) via its
  ``as_chunks`` adapter, so simulation peak memory is bounded by the
  chunk size regardless of trace length.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.directives.model import AllocateRequest
from repro.tracegen.events import DirectiveEvent, DirectiveKind, ReferenceTrace

#: bumped on any incompatible change to the on-disk layout
#: (v2: companion sweep-array archives, version-stamped like traces)
FORMAT_VERSION = 2


def _event_to_dict(event: DirectiveEvent) -> dict:
    return {
        "position": event.position,
        "kind": event.kind.value,
        "site": event.site,
        "requests": [
            [r.priority_index, r.pages] for r in event.requests
        ],
        "lock_pages": list(event.lock_pages),
        "priority_index": event.priority_index,
    }


def _event_from_dict(data: dict) -> DirectiveEvent:
    return DirectiveEvent(
        position=int(data["position"]),
        kind=DirectiveKind(data["kind"]),
        site=int(data["site"]),
        requests=tuple(
            AllocateRequest(priority_index=int(pi), pages=int(x))
            for pi, x in data["requests"]
        ),
        lock_pages=tuple(int(p) for p in data["lock_pages"]),
        priority_index=int(data["priority_index"]),
    )


def save_trace(
    trace: ReferenceTrace, path: Union[str, Path], compress: bool = True
) -> Path:
    """Write ``trace`` to ``path`` (``.npz`` appended when missing).

    ``compress=False`` trades disk for wall time — right for cache
    files that are rewritten often, wrong for archival traces.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    header = {
        "format_version": FORMAT_VERSION,
        "program_name": trace.program_name,
        "total_pages": trace.total_pages,
        "truncated": trace.truncated,
        "array_pages": {
            name: [first, count]
            for name, (first, count) in trace.array_pages.items()
        },
        "directives": [_event_to_dict(d) for d in trace.directives],
    }
    writer = np.savez_compressed if compress else np.savez
    writer(
        path,
        pages=trace.pages,
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
    )
    return path


def load_trace(path: Union[str, Path]) -> ReferenceTrace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with np.load(path) as archive:
        try:
            pages = archive["pages"]
            header_bytes = archive["header"].tobytes()
        except KeyError as err:
            raise ValueError(f"{path} is not a saved trace: missing {err}") from None
    header = json.loads(header_bytes.decode("utf-8"))
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path} uses trace format {version}; this build reads "
            f"{FORMAT_VERSION}"
        )
    return ReferenceTrace(
        program_name=header["program_name"],
        pages=pages.astype(np.int32),
        total_pages=int(header["total_pages"]),
        directives=[_event_from_dict(d) for d in header["directives"]],
        array_pages={
            name: (int(first), int(count))
            for name, (first, count) in header["array_pages"].items()
        },
        truncated=bool(header["truncated"]),
    )


def save_sweeps(
    arrays: Dict[str, np.ndarray], path: Union[str, Path]
) -> Path:
    """Write precomputed sweep arrays (LRU distances, WS gaps, …) to a
    version-stamped ``.npz`` companion of a saved trace."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    stamped = dict(arrays)
    stamped["format_version"] = np.array(FORMAT_VERSION, dtype=np.int64)
    # Uncompressed: these are cache files, and deflate costs more wall
    # time per table run than the disk it saves.
    np.savez(path, **stamped)
    return path


def load_sweeps(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Read sweep arrays written by :func:`save_sweeps`."""
    path = Path(path)
    with np.load(path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    version = int(arrays.pop("format_version", -1))
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path} uses sweep format {version}; this build reads "
            f"{FORMAT_VERSION}"
        )
    return arrays


# -- sharded on-disk traces ----------------------------------------------------

#: references per shard file (int32 → 16 MiB per shard)
DEFAULT_SHARD_SIZE = 1 << 22

_MANIFEST = "manifest.json"


def _shard_name(index: int) -> str:
    return f"shard-{index:05d}.npy"


class ShardedTraceWriter:
    """Incrementally write a trace as fixed-size ``.npy`` shards.

    ``append`` takes page batches of any length; every shard except the
    last holds exactly ``shard_size`` references, so readers locate any
    global position arithmetically.  ``close`` (or the context manager
    exit) writes ``manifest.json`` last — a directory without a
    manifest is an aborted write, never a readable trace.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        program_name: str,
        total_pages: int,
        shard_size: int = DEFAULT_SHARD_SIZE,
        directives: Sequence[DirectiveEvent] = (),
        array_pages: Optional[Dict[str, tuple]] = None,
        truncated: bool = False,
    ):
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.program_name = program_name
        self.total_pages = total_pages
        self.shard_size = shard_size
        self.directives = list(directives)
        self.array_pages = dict(array_pages or {})
        self.truncated = truncated
        self.length = 0
        self._pending: List[np.ndarray] = []
        self._pending_len = 0
        self._shards: List[dict] = []
        self._closed = False

    def __enter__(self) -> "ShardedTraceWriter":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is None:
            self.close()

    def append(self, pages: np.ndarray) -> None:
        if self._closed:
            raise ValueError("writer is closed")
        pages = np.asarray(pages, dtype=np.int32)
        if pages.ndim != 1:
            raise ValueError("page batches must be one-dimensional")
        if len(pages) == 0:
            return
        if pages.min() < 0 or int(pages.max()) >= self.total_pages:
            raise ValueError("page number outside [0, total_pages)")
        self._pending.append(pages)
        self._pending_len += len(pages)
        self.length += len(pages)
        while self._pending_len >= self.shard_size:
            self._flush_shard()

    def _flush_shard(self) -> None:
        take = min(self._pending_len, self.shard_size)
        if take == 0:
            return
        out = np.empty(take, dtype=np.int32)
        filled = 0
        while filled < take:
            head = self._pending[0]
            room = take - filled
            if len(head) <= room:
                out[filled : filled + len(head)] = head
                filled += len(head)
                self._pending.pop(0)
            else:
                out[filled:] = head[:room]
                self._pending[0] = head[room:]
                filled = take
        self._pending_len -= take
        name = _shard_name(len(self._shards))
        np.save(self.directory / name, out)
        self._shards.append({"file": name, "length": take})

    def close(self) -> Path:
        """Flush trailing pages and write the manifest. Idempotent."""
        if self._closed:
            return self.directory / _MANIFEST
        while self._pending_len:
            self._flush_shard()
        positions = [d.position for d in self.directives]
        if positions != sorted(positions):
            raise ValueError("directive events must be position-ordered")
        manifest = {
            "format_version": FORMAT_VERSION,
            "kind": "sharded-trace",
            "program_name": self.program_name,
            "total_pages": self.total_pages,
            "truncated": self.truncated,
            "length": self.length,
            "shard_size": self.shard_size,
            "shards": self._shards,
            "array_pages": {
                name: [first, count]
                for name, (first, count) in self.array_pages.items()
            },
            "directives": [_event_to_dict(d) for d in self.directives],
        }
        path = self.directory / _MANIFEST
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(manifest, indent=1) + "\n")
        os.replace(tmp, path)
        self._closed = True
        return path


def save_trace_sharded(
    trace: ReferenceTrace,
    directory: Union[str, Path],
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> Path:
    """Write an in-RAM trace in the sharded format; returns the manifest."""
    writer = ShardedTraceWriter(
        directory,
        program_name=trace.program_name,
        total_pages=trace.total_pages,
        shard_size=shard_size,
        directives=trace.directives,
        array_pages=trace.array_pages,
        truncated=trace.truncated,
    )
    writer.append(trace.pages)
    return writer.close()


class _ShardedChunks:
    """Chunk source over a :class:`ShardedTrace` (one mmap window live)."""

    def __init__(self, trace: "ShardedTrace", chunk_size: int):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.trace = trace
        self.chunk_size = chunk_size

    @property
    def program_name(self) -> str:
        return self.trace.program_name

    @property
    def total_pages(self) -> int:
        return self.trace.total_pages

    @property
    def length(self) -> int:
        return self.trace.length

    @property
    def directives(self):
        return self.trace.directives

    def chunks(self):
        from repro.vm.stream.chunks import TraceChunk

        n = self.trace.length
        for base in range(0, n, self.chunk_size):
            stop = min(base + self.chunk_size, n)
            yield TraceChunk(
                pages=self.trace.read(base, stop),
                base=base,
                is_last=stop == n,
            )


class ShardedTrace:
    """Read side of the sharded format: metadata + windowed page access.

    Shards are opened mmap-backed on first touch and at most one is
    held open at a time, so sequential streaming keeps O(chunk) bytes
    resident however long the trace is.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        path = self.directory / _MANIFEST
        if not path.exists():
            raise ValueError(
                f"{self.directory} is not a sharded trace: no {_MANIFEST} "
                "(aborted or foreign directory)"
            )
        manifest = json.loads(path.read_text())
        version = manifest.get("format_version")
        if version != FORMAT_VERSION or manifest.get("kind") != "sharded-trace":
            raise ValueError(
                f"{path} uses format {version!r}/{manifest.get('kind')!r}; "
                f"this build reads sharded-trace v{FORMAT_VERSION}"
            )
        self.program_name = manifest["program_name"]
        self.total_pages = int(manifest["total_pages"])
        self.truncated = bool(manifest["truncated"])
        self.length = int(manifest["length"])
        self.shard_size = int(manifest["shard_size"])
        self.directives = [
            _event_from_dict(d) for d in manifest["directives"]
        ]
        self.array_pages = {
            name: (int(first), int(count))
            for name, (first, count) in manifest["array_pages"].items()
        }
        self._shards = manifest["shards"]
        declared = sum(int(s["length"]) for s in self._shards)
        if declared != self.length:
            raise ValueError(
                f"{path}: shard lengths sum to {declared} but the "
                f"manifest declares {self.length} references"
            )
        self._open_index = -1
        self._open_pages: Optional[np.ndarray] = None

    def _shard_pages(self, index: int) -> np.ndarray:
        if index == self._open_index:
            return self._open_pages
        meta = self._shards[index]
        path = self.directory / meta["file"]
        want = int(meta["length"])
        try:
            pages = np.load(path, mmap_mode="r")
        except Exception as err:
            raise ValueError(
                f"shard {path} is unreadable ({type(err).__name__}: {err}); "
                "the trace was truncated or corrupted on disk"
            ) from None
        if pages.ndim != 1 or len(pages) != want:
            raise ValueError(
                f"shard {path} holds {pages.shape} int32 values but the "
                f"manifest declares {want}; the trace was truncated or "
                "corrupted on disk"
            )
        self._open_index = index
        self._open_pages = pages
        return pages

    def read(self, start: int, stop: int) -> np.ndarray:
        """Pages in ``[start, stop)`` — a zero-copy mmap slice when the
        window lies inside one shard, a small concatenation otherwise."""
        if not 0 <= start <= stop <= self.length:
            raise ValueError(f"window [{start}, {stop}) outside the trace")
        if start == stop:
            return np.empty(0, dtype=np.int32)
        first = start // self.shard_size
        last = (stop - 1) // self.shard_size
        if first == last:
            pages = self._shard_pages(first)
            lo = start - first * self.shard_size
            return pages[lo : lo + (stop - start)]
        parts = []
        at = start
        for index in range(first, last + 1):
            pages = self._shard_pages(index)
            lo = at - index * self.shard_size
            take = min(stop, (index + 1) * self.shard_size) - at
            parts.append(np.asarray(pages[lo : lo + take]))
            at += take
        return np.concatenate(parts)

    def as_chunks(self, chunk_size: int) -> _ShardedChunks:
        """Adapter consumed by :func:`repro.vm.stream.as_chunk_source`."""
        return _ShardedChunks(self, chunk_size)

    def to_reference_trace(self) -> ReferenceTrace:
        """Materialize the whole trace in RAM (small traces, tests)."""
        return ReferenceTrace(
            program_name=self.program_name,
            pages=self.read(0, self.length),
            total_pages=self.total_pages,
            directives=list(self.directives),
            array_pages=dict(self.array_pages),
            truncated=self.truncated,
        )

    def summary(self) -> str:
        return (
            f"{self.program_name}: R={self.length} references in "
            f"{len(self._shards)} shard(s) of {self.shard_size}, "
            f"V={self.total_pages} pages, "
            f"{len(self.directives)} directive events"
        )


def open_sharded_trace(directory: Union[str, Path]) -> ShardedTrace:
    """Open a directory written by :class:`ShardedTraceWriter`."""
    return ShardedTrace(directory)
