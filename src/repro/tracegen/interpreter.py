"""Tree-walking interpreter that executes a program and records its trace.

The interpreter performs the real numerics — FORTRAN-style integer
division and MOD, REAL array storage, data-dependent IF and convergence
loops — so the reference strings have the genuine shape of the
algorithms.  Every array-element access (read or write) appends one page
number to the trace; scalar operations are free, as in the paper.

When an :class:`~repro.directives.model.InstrumentationPlan` is
supplied, directive events are emitted at their execution points:

* ``LOCK`` / ``ALLOCATE`` each time control is about to enter the loop
  they precede (inner-loop directives therefore re-execute on every
  outer iteration, which is how denied requests get retried);
* ``UNLOCK`` right after the outermost loop of a nest exits.

``LOCK`` names arrays; the interpreter resolves each to the page of that
array's most recently referenced element (its first page when untouched)
— the run-time analogue of the paper's "array page to be locked".
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.analysis.parameters import PageConfig
from repro.directives.model import InstrumentationPlan
from repro.frontend import ast
from repro.frontend.errors import FrontendError
from repro.frontend.symbols import SymbolTable
from repro.tracegen.events import DirectiveEvent, DirectiveKind, ReferenceTrace
from repro.tracegen.paging import MemoryLayout

Number = Union[int, float]


class InterpreterError(FrontendError):
    """Run-time error in the interpreted program (bad index, domain…)."""


class ExecutionLimitError(FrontendError):
    """The statement budget was exhausted (runaway loop guard)."""


class _TraceFull(Exception):
    """Internal: the reference cap was reached; stop and keep the prefix."""


class _StopExecution(Exception):
    """Internal: STOP statement."""


class _ExitLoop(Exception):
    """Internal: EXIT statement."""


def _fortran_int_div(left: int, right: int) -> int:
    if right == 0:
        raise ZeroDivisionError("integer division by zero")
    quotient = abs(left) // abs(right)
    return quotient if (left >= 0) == (right >= 0) else -quotient


def _fortran_mod(left: Number, right: Number) -> Number:
    if isinstance(left, int) and isinstance(right, int):
        return left - _fortran_int_div(left, right) * right
    return math.fmod(left, right)


def _sign(a: Number, b: Number) -> Number:
    magnitude = abs(a)
    return magnitude if b >= 0 else -magnitude


_INTRINSICS: Dict[str, Callable[..., Number]] = {
    "SQRT": math.sqrt,
    "ABS": abs,
    "IABS": abs,
    "EXP": math.exp,
    "SIN": math.sin,
    "COS": math.cos,
    "TAN": math.tan,
    "ATAN": math.atan,
    "LOG": math.log,
    "ALOG": math.log,
    "LOG10": math.log10,
    "MOD": _fortran_mod,
    "AMOD": _fortran_mod,
    "MIN": min,
    "MAX": max,
    "MIN0": min,
    "MAX0": max,
    "AMIN1": min,
    "AMAX1": max,
    "SIGN": _sign,
    "ISIGN": _sign,
    "FLOAT": float,
    "REAL": float,
    "DBLE": float,
    "INT": math.trunc,
    "IFIX": math.trunc,
    "NINT": lambda x: int(round(x)),
}


class Interpreter:
    """Executes one program, producing a :class:`ReferenceTrace`."""

    def __init__(
        self,
        program: ast.Program,
        symbols: Optional[SymbolTable] = None,
        page_config: Optional[PageConfig] = None,
        plan: Optional[InstrumentationPlan] = None,
        max_references: int = 5_000_000,
        max_operations: int = 100_000_000,
        compile_nests: bool = False,
    ):
        # compile_nests enables the affine fast path, which tracks
        # values only for names that can influence the trace: the
        # returned trace is exact, but scalar/array state left behind
        # is not.  Use it when the trace is the only observable output
        # (generate_trace does); direct Interpreter users who inspect
        # ``scalars``/``arrays`` afterwards need pure interpretation.
        self.program = program
        self.symbols = symbols or SymbolTable.from_program(program)
        self.page_config = page_config or PageConfig()
        self.layout = MemoryLayout(self.symbols, self.page_config)
        self.plan = plan
        self.max_references = max_references
        self.max_operations = max_operations
        self.scalars: Dict[str, Number] = dict(self.symbols.params)
        self.arrays: Dict[str, np.ndarray] = {
            name: np.zeros(info.element_count, dtype=np.float64)
            for name, info in self.symbols.arrays.items()
        }
        self._apply_data_statements()
        self._refs: List[int] = []
        self._events: List[DirectiveEvent] = []
        self._last_page: Dict[str, int] = {}
        #: pages currently pinned, per directive site
        self._locks_by_site: Dict[int, Tuple[int, ...]] = {}
        #: sites locked under each root nest (for UNLOCK resolution)
        self._sites_by_root: Dict[int, List[int]] = {}
        self._loop_stack: List[int] = []
        self._operations = 0
        self._truncated = False
        if compile_nests:
            from repro.tracegen.compile import TraceCompiler

            self._compiler: Optional[TraceCompiler] = TraceCompiler(self)
        else:
            self._compiler = None

    # -- public -------------------------------------------------------------

    def run(self) -> ReferenceTrace:
        """Execute the program to completion (or a limit) and return the
        trace."""
        try:
            self._exec_block(self.program.body)
        except (_StopExecution, _TraceFull):
            pass
        return ReferenceTrace(
            program_name=self.program.name,
            pages=np.asarray(self._refs, dtype=np.int32),
            total_pages=max(self.layout.total_pages, 1),
            directives=self._events,
            array_pages={
                name: (p.first_page, p.page_count)
                for name, p in self.layout.placements.items()
            },
            truncated=self._truncated,
        )

    def _apply_data_statements(self) -> None:
        """Load-time initialization from DATA groups (no page refs:
        initial values arrive with the load image)."""
        from repro.frontend.symbols import eval_const_expr

        for group in self.program.data:
            if isinstance(group.target, str):
                self.arrays[group.target][:] = [float(v) for v in group.values]
            else:
                ref = group.target
                info = self.symbols.arrays[ref.name]
                indices = tuple(
                    int(eval_const_expr(ix, self.symbols.params))
                    for ix in ref.indices
                )
                self.arrays[ref.name][info.linear_index(indices)] = float(
                    group.values[0]
                )

    # -- statements -----------------------------------------------------------

    def _exec_block(self, stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.Stmt) -> None:
        self._operations += 1
        if self._operations > self.max_operations:
            raise ExecutionLimitError(
                f"statement budget ({self.max_operations}) exhausted", stmt.line
            )
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt)
        elif isinstance(stmt, ast.DoLoop):
            if self._compiler is None or not self._compiler.try_execute(stmt):
                self._exec_do(stmt)
        elif isinstance(stmt, ast.WhileLoop):
            self._exec_while(stmt)
        elif isinstance(stmt, ast.IfBlock):
            for cond, body in stmt.branches:
                if cond is None or self._truthy(self._eval(cond)):
                    self._exec_block(body)
                    return
        elif isinstance(stmt, ast.LogicalIf):
            if self._truthy(self._eval(stmt.cond)):
                self._exec_stmt(stmt.stmt)
        elif isinstance(stmt, ast.Print):
            for item in stmt.items:
                self._eval(item)  # output discarded; references counted
        elif isinstance(stmt, ast.Continue):
            return
        elif isinstance(stmt, ast.Stop):
            raise _StopExecution()
        elif isinstance(stmt, ast.ExitLoop):
            raise _ExitLoop()
        else:  # pragma: no cover
            raise InterpreterError(
                f"cannot execute {type(stmt).__name__}", stmt.line
            )

    def _exec_assign(self, stmt: ast.Assign) -> None:
        value = self._eval(stmt.expr)
        target = stmt.target
        if isinstance(target, ast.Var):
            self.scalars[target.name] = value
            return
        indices = self._eval_indices(target)
        self._touch(target.name, indices, target.line)
        info = self.symbols.arrays[target.name]
        self.arrays[target.name][info.linear_index(indices)] = float(value)

    def _exec_do(self, loop: ast.DoLoop) -> None:
        self._emit_loop_entry_directives(loop)
        start = self._int_value(self._eval(loop.start), loop.line)
        end = self._int_value(self._eval(loop.end), loop.line)
        step = (
            self._int_value(self._eval(loop.step), loop.line)
            if loop.step is not None
            else 1
        )
        if step == 0:
            raise InterpreterError("DO step of zero", loop.line)
        # FORTRAN-77 trip count: zero-trip loops are legal.
        trips = max(0, (end - start + step) // step)
        self._loop_stack.append(loop.loop_id)
        try:
            value = start
            for _ in range(trips):
                self.scalars[loop.var] = value
                try:
                    self._exec_block(loop.body)
                except _ExitLoop:
                    break
                value += step
            else:
                # Normal termination leaves var one step past the end.
                self.scalars[loop.var] = value
        finally:
            self._loop_stack.pop()
        self._emit_loop_exit_directives(loop)

    def _exec_while(self, loop: ast.WhileLoop) -> None:
        self._emit_loop_entry_directives(loop)
        self._loop_stack.append(loop.loop_id)
        try:
            while True:
                self._operations += 1
                if self._operations > self.max_operations:
                    raise ExecutionLimitError(
                        f"statement budget ({self.max_operations}) exhausted "
                        "in DO WHILE",
                        loop.line,
                    )
                if not self._truthy(self._eval(loop.cond)):
                    break
                try:
                    self._exec_block(loop.body)
                except _ExitLoop:
                    break
        finally:
            self._loop_stack.pop()
        self._emit_loop_exit_directives(loop)

    # -- directives -------------------------------------------------------------

    def _emit_loop_entry_directives(self, loop) -> None:
        if self.plan is None:
            return
        lock = self.plan.locks_before.get(loop.loop_id)
        if lock is not None:
            pages = tuple(
                sorted({self._current_page_of(name) for name in lock.arrays})
            )
            root = self._loop_stack[0] if self._loop_stack else loop.loop_id
            self._locks_by_site[lock.loop_id] = pages
            self._sites_by_root.setdefault(root, [])
            if lock.loop_id not in self._sites_by_root[root]:
                self._sites_by_root[root].append(lock.loop_id)
            self._events.append(
                DirectiveEvent(
                    position=len(self._refs),
                    kind=DirectiveKind.LOCK,
                    site=lock.loop_id,
                    lock_pages=pages,
                    priority_index=lock.priority_index,
                )
            )
        allocate = self.plan.allocates.get(loop.loop_id)
        if allocate is not None:
            self._events.append(
                DirectiveEvent(
                    position=len(self._refs),
                    kind=DirectiveKind.ALLOCATE,
                    site=loop.loop_id,
                    requests=allocate.requests,
                )
            )

    def _emit_loop_exit_directives(self, loop) -> None:
        if self.plan is None:
            return
        unlock = self.plan.unlocks_after.get(loop.loop_id)
        if unlock is None:
            return
        sites = self._sites_by_root.pop(loop.loop_id, [])
        pages: List[int] = []
        for site in sites:
            pages.extend(self._locks_by_site.pop(site, ()))
        self._events.append(
            DirectiveEvent(
                position=len(self._refs),
                kind=DirectiveKind.UNLOCK,
                site=loop.loop_id,
                lock_pages=tuple(sorted(set(pages))),
            )
        )

    def _current_page_of(self, array: str) -> int:
        page = self._last_page.get(array)
        if page is None:
            page = self.layout.placements[array].first_page
        return page

    # -- expressions --------------------------------------------------------------

    def _eval(self, expr: ast.Expr) -> Number:
        if isinstance(expr, ast.Num):
            return expr.value
        if isinstance(expr, ast.Var):
            try:
                return self.scalars[expr.name]
            except KeyError:
                raise InterpreterError(
                    f"scalar {expr.name} used before assignment", expr.line
                ) from None
        if isinstance(expr, ast.LogicalLit):
            return 1 if expr.value else 0
        if isinstance(expr, ast.ArrayRef):
            indices = self._eval_indices(expr)
            self._touch(expr.name, indices, expr.line)
            info = self.symbols.arrays[expr.name]
            return float(self.arrays[expr.name][info.linear_index(indices)])
        if isinstance(expr, ast.UnaryOp):
            value = self._eval(expr.operand)
            if expr.op == ".NOT.":
                return 0 if self._truthy(value) else 1
            return -value
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr)
        if isinstance(expr, ast.Compare):
            left, right = self._eval(expr.left), self._eval(expr.right)
            result = {
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
                "==": left == right,
                "/=": left != right,
            }[expr.op]
            return 1 if result else 0
        if isinstance(expr, ast.LogicalOp):
            left = self._truthy(self._eval(expr.left))
            if expr.op == ".AND.":
                if not left:
                    return 0
                return 1 if self._truthy(self._eval(expr.right)) else 0
            if left:
                return 1
            return 1 if self._truthy(self._eval(expr.right)) else 0
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        raise InterpreterError(  # pragma: no cover
            f"cannot evaluate {type(expr).__name__}", expr.line
        )

    def _eval_binop(self, expr: ast.BinOp) -> Number:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        try:
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                if isinstance(left, int) and isinstance(right, int):
                    return _fortran_int_div(left, right)
                return left / right
            if expr.op == "**":
                result = left**right
                if isinstance(result, complex):
                    raise InterpreterError(
                        "negative base with fractional exponent", expr.line
                    )
                return result
        except ZeroDivisionError:
            raise InterpreterError("division by zero", expr.line) from None
        except OverflowError:
            raise InterpreterError("arithmetic overflow", expr.line) from None
        raise InterpreterError(  # pragma: no cover
            f"unknown operator {expr.op}", expr.line
        )

    def _eval_call(self, expr: ast.Call) -> Number:
        fn = _INTRINSICS.get(expr.name)
        if fn is None:
            raise InterpreterError(
                f"unknown function or undeclared array {expr.name}", expr.line
            )
        args = [self._eval(a) for a in expr.args]
        try:
            return fn(*args)
        except ValueError as err:
            raise InterpreterError(
                f"{expr.name} domain error: {err}", expr.line
            ) from None
        except TypeError as err:
            raise InterpreterError(
                f"bad arguments to {expr.name}: {err}", expr.line
            ) from None
        except ZeroDivisionError:
            raise InterpreterError(f"{expr.name} division by zero", expr.line) from None

    def _eval_indices(self, ref: ast.ArrayRef) -> Tuple[int, ...]:
        return tuple(
            self._int_value(self._eval(ix), ref.line) for ix in ref.indices
        )

    # -- helpers ----------------------------------------------------------------

    def _touch(self, array: str, indices: Tuple[int, ...], line: int) -> None:
        """Record one page reference for an array-element access."""
        try:
            page = self.layout.page_of(array, indices)
        except FrontendError as err:
            raise InterpreterError(str(err), line) from None
        self._refs.append(page)
        self._last_page[array] = page
        if len(self._refs) >= self.max_references:
            self._truncated = True
            raise _TraceFull()

    @staticmethod
    def _truthy(value: Number) -> bool:
        return bool(value)

    @staticmethod
    def _int_value(value: Number, line: int) -> int:
        if isinstance(value, int):
            return value
        if isinstance(value, float) and float(value).is_integer():
            return int(value)
        raise InterpreterError(
            f"expected an integer value, got {value!r}", line
        )


def generate_trace(
    program: ast.Program,
    plan: Optional[InstrumentationPlan] = None,
    symbols: Optional[SymbolTable] = None,
    page_config: Optional[PageConfig] = None,
    max_references: int = 5_000_000,
    max_operations: int = 100_000_000,
    compile_nests: bool = True,
) -> ReferenceTrace:
    """Execute ``program`` and return its reference trace.

    ``compile_nests=False`` disables the affine fast path
    (:mod:`repro.tracegen.compile`) and forces pure interpretation —
    the reference behaviour the compiler is tested against.
    """
    interpreter = Interpreter(
        program,
        symbols=symbols,
        page_config=page_config,
        plan=plan,
        max_references=max_references,
        max_operations=max_operations,
        compile_nests=compile_nests,
    )
    return interpreter.run()
