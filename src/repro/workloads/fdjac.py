"""FDJAC — forward-difference Jacobian approximation (MINPACK ``fdjac2``).

Structured as MINPACK structures it: a driver that CALLs the residual
function FCN (the tridiagonal test function) once at the base point and
once per perturbed point, storing divided differences into column ``j``
of the Jacobian — the canonical column-wise 2-D fill.  A final row-wise
``J x`` product exercises the opposite reference order on the same
array.  The CALLs are flattened by the frontend's inliner before
analysis, producing exactly the loop structure the compiler sees in the
original FORTRAN after its own interprocedural step.
"""

SOURCE = """
PROGRAM FDJAC
PARAMETER (N = 64)
DIMENSION X(N), FVEC(N), WA(N), FJAC(N, N)
C ---- starting point ----
DO 10 I = 1, N
  X(I) = 1.0 - FLOAT(I) / FLOAT(N)
10 CONTINUE
C ---- base residual ----
CALL FCN(X, FVEC)
C ---- forward difference, one Jacobian column at a time ----
DO 30 J = 1, N
  TEMP = X(J)
  H = 0.0001 * ABS(TEMP)
  IF (H == 0.0) H = 0.0001
  X(J) = TEMP + H
  CALL FCN(X, WA)
  X(J) = TEMP
  DO 50 I = 1, N
    FJAC(I, J) = (WA(I) - FVEC(I)) / H
50 CONTINUE
30 CONTINUE
C ---- validate: residual of the Newton system, row-wise J access ----
ANORM = 0.0
DO 60 I = 1, N
  S = 0.0
  DO 70 J = 1, N
    S = S + FJAC(I, J) * X(J)
70 CONTINUE
  ANORM = ANORM + S * S
60 CONTINUE
END

SUBROUTINE FCN(X, F)
C the MINPACK tridiagonal test function
PARAMETER (N = 64)
DIMENSION X(N), F(N)
DO 20 I = 1, N
  T = (3.0 - 2.0 * X(I)) * X(I)
  T1 = 0.0
  IF (I > 1) T1 = X(I-1)
  T2 = 0.0
  IF (I < N) T2 = X(I+1)
  F(I) = T - T1 - 2.0 * T2 + 1.0
20 CONTINUE
RETURN
END
"""
