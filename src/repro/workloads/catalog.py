"""Registry of the nine benchmark programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.frontend import ast
from repro.frontend.parser import parse_source
from repro.frontend.symbols import SymbolTable

from repro.workloads import (
    approx,
    conduct,
    fdjac,
    field as field_mod,
    hwscrt,
    hybrj,
    init,
    main_driver,
    tql,
)


@dataclass
class Workload:
    """One benchmark program: source text plus lazily parsed artifacts."""

    name: str
    source: str
    description: str
    origin: str  # the package family the paper drew the program from
    _program: Optional[ast.Program] = field(default=None, repr=False)
    _symbols: Optional[SymbolTable] = field(default=None, repr=False)

    def program(self) -> ast.Program:
        """The parsed program (cached)."""
        if self._program is None:
            self._program = parse_source(self.source)
        return self._program

    def symbols(self) -> SymbolTable:
        """The resolved symbol table (cached)."""
        if self._symbols is None:
            self._symbols = SymbolTable.from_program(self.program())
        return self._symbols


_CATALOG: Dict[str, Workload] = {}


def _register(name: str, module, description: str, origin: str) -> None:
    _CATALOG[name] = Workload(
        name=name, source=module.SOURCE, description=description, origin=origin
    )


_register(
    "MAIN",
    main_driver,
    "atmospheric-model driver: 3-deep time-stepping nest",
    "UIARL",
)
_register("FDJAC", fdjac, "forward-difference Jacobian (fdjac2)", "MINPACK")
_register("TQL", tql, "tridiagonal QL eigensolver with eigenvectors (tql2)", "EISPACK")
_register("FIELD", field_mod, "Jacobi relaxation of a potential field", "NRL")
_register("INIT", init, "mixed-order array initialization kernel", "AFWL")
_register("APPROX", approx, "Chebyshev least-squares fit", "ACM")
_register("HYBRJ", hybrj, "Powell hybrid step with analytic Jacobian", "MINPACK")
_register("CONDUCT", conduct, "explicit heat conduction, 270-page grid", "IEEE")
_register("HWSCRT", hwscrt, "Helmholtz solver on a rectangle (SOR)", "FISHPACK")


def workload_names() -> List[str]:
    """Names of all nine benchmark programs, in catalog order."""
    return list(_CATALOG)


def get_workload(name: str) -> Workload:
    """Look up one benchmark by (case-insensitive) name."""
    try:
        return _CATALOG[name.upper()]
    except KeyError:
        known = ", ".join(_CATALOG)
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def all_workloads() -> List[Workload]:
    """All nine benchmarks, in catalog order."""
    return list(_CATALOG.values())
