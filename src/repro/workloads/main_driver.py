"""MAIN — atmospheric-model driver (UIARL style).

A three-level time-stepping nest over a 64x24 pressure field:

* a column-wise smoothing sweep (good order for column-major storage);
* a row-wise weighted accumulation into a vector (the order found in
  real package code, hostile to small allocations);
* a column-wise field update.

The Δ=3 nest gives the CD policy three directive levels, which is what
lets the paper rerun this program as MAIN1/MAIN2/MAIN3 with directive
sets taken from different levels of the hierarchy (Table 1).
"""

SOURCE = """
PROGRAM MAIN
PARAMETER (N = 64, M = 24)
DIMENSION P(N, M), Q(N, M), U(N), V(N), W(M), TC(8)
C ---- set up the initial field (column-wise) and the tables ----
DO 10 J = 1, M
  DO 20 I = 1, N
    P(I, J) = FLOAT(I + J) / FLOAT(N)
    Q(I, J) = 0.0
20 CONTINUE
10 CONTINUE
DO 30 I = 1, N
  U(I) = FLOAT(I) / FLOAT(N)
  V(I) = 0.0
30 CONTINUE
DO 40 J = 1, M
  W(J) = 1.0 / FLOAT(J)
40 CONTINUE
DO 45 K = 1, 8
  TC(K) = 1.0 + 0.01 * FLOAT(K)
45 CONTINUE
C ---- main time-stepping loop ----
DO 50 ITER = 1, 8
C   time-varying coefficient, read at the top of every step
  DT = TC(ITER)
C   column sweep: vertical smoothing of the pressure field
  DO 60 J = 1, M
    DO 70 I = 2, N - 1
      Q(I, J) = 0.25 * (P(I-1, J) + 2.0 * P(I, J) + P(I+1, J))
70  CONTINUE
    Q(1, J) = Q(2, J)
    Q(N, J) = Q(N-1, J)
60 CONTINUE
C   row-wise accumulation of the weighted column average
  DO 80 I = 1, N
    S = 0.0
    DO 90 J = 1, M
      S = S + Q(I, J) * W(J)
90  CONTINUE
    V(I) = S + U(I)
80 CONTINUE
C   column-wise field update from the smoothed field and the profile
  DO 100 J = 1, M
    DO 110 I = 1, N
      P(I, J) = Q(I, J) + 0.01 * DT * V(I)
110 CONTINUE
100 CONTINUE
50 CONTINUE
END
"""
