"""APPROX — Chebyshev least-squares approximation.

Builds a 512x10 Chebyshev basis matrix with the three-term recurrence
(row-wise, since the recurrence runs across basis columns for one data
point), forms the normal equations with column-wise dot products over
the same matrix, and solves the small dense system by Gaussian
elimination with back substitution.
"""

SOURCE = """
PROGRAM APPROX
PARAMETER (NDATA = 512, NBASIS = 10)
DIMENSION X(NDATA), Y(NDATA), PHI(NDATA, NBASIS)
DIMENSION G(NBASIS, NBASIS), COEF(NBASIS), RHS(NBASIS)
C ---- sampled data ----
DO 10 I = 1, NDATA
  X(I) = 2.0 * FLOAT(I) / FLOAT(NDATA) - 1.0
  Y(I) = SIN(3.0 * X(I)) + 0.5 * X(I)
10 CONTINUE
C ---- basis matrix by the Chebyshev recurrence (row-wise) ----
DO 20 I = 1, NDATA
  PHI(I, 1) = 1.0
  PHI(I, 2) = X(I)
  DO 30 K = 3, NBASIS
    PHI(I, K) = 2.0 * X(I) * PHI(I, K-1) - PHI(I, K-2)
30 CONTINUE
20 CONTINUE
C ---- normal equations: G = PHI' PHI, RHS = PHI' Y (column-wise) ----
DO 40 K = 1, NBASIS
  DO 50 L = 1, NBASIS
    S = 0.0
    DO 60 I = 1, NDATA
      S = S + PHI(I, K) * PHI(I, L)
60  CONTINUE
    G(K, L) = S
50 CONTINUE
  S = 0.0
  DO 70 I = 1, NDATA
    S = S + PHI(I, K) * Y(I)
70 CONTINUE
  RHS(K) = S
40 CONTINUE
C ---- Gaussian elimination ----
DO 80 K = 1, NBASIS - 1
  DO 90 L = K + 1, NBASIS
    F = G(L, K) / G(K, K)
    DO 100 J = K + 1, NBASIS
      G(L, J) = G(L, J) - F * G(K, J)
100 CONTINUE
    RHS(L) = RHS(L) - F * RHS(K)
90 CONTINUE
80 CONTINUE
C ---- back substitution ----
DO 110 K1 = 1, NBASIS
  K = NBASIS + 1 - K1
  S = RHS(K)
  IF (K < NBASIS) THEN
    DO 120 L = K + 1, NBASIS
      S = S - G(K, L) * COEF(L)
120 CONTINUE
  ENDIF
  COEF(K) = S / G(K, K)
110 CONTINUE
END
"""
