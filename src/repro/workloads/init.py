"""INIT — array-initialization kernel.

Fills three 40-page arrays from trigonometric tables: one column-wise
pass (storage order), then two row-wise passes.  Row-wise fills of
large column-major arrays are the worst case for a small fixed
allocation — every reference strides a full column — which is why the
paper's Tables 3 and 4 show some of the largest LRU excesses on INIT.
"""

SOURCE = """
PROGRAM INIT
PARAMETER (NX = 64, NY = 40)
DIMENSION A(NX, NY), B(NX, NY), C(NX, NY), U(NX), V(NY)
C ---- trigonometric tables ----
DO 10 I = 1, NX
  U(I) = SIN(FLOAT(I) * 0.1)
10 CONTINUE
DO 20 J = 1, NY
  V(J) = COS(FLOAT(J) * 0.1)
20 CONTINUE
C ---- A filled in storage (column) order ----
DO 30 J = 1, NY
  DO 40 I = 1, NX
    A(I, J) = U(I) * V(J)
40 CONTINUE
30 CONTINUE
C ---- B filled in row order (as found in the package source) ----
DO 50 I = 1, NX
  DO 60 J = 1, NY
    B(I, J) = A(I, J) + U(I)
60 CONTINUE
50 CONTINUE
C ---- C combined from A and B, row order again ----
DO 70 I = 1, NX
  DO 80 J = 1, NY
    C(I, J) = 0.5 * (A(I, J) + B(I, J))
80 CONTINUE
70 CONTINUE
C ---- column-wise normalization pass over C ----
DO 90 J = 1, NY
  S = 0.0
  DO 100 I = 1, NX
    S = S + ABS(C(I, J))
100 CONTINUE
  IF (S == 0.0) S = 1.0
  DO 110 I = 1, NX
    C(I, J) = C(I, J) / S
110 CONTINUE
90 CONTINUE
END
"""
