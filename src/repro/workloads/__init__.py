"""The nine numerical FORTRAN programs of the paper's evaluation.

The paper traces 9 FORTRAN programs drawn from numerical packages
(UIARL, EISPACK, ACM, IEEE, NRL, AFWL, FISHPACK, MINPACK).  The original
sources and problem sizes are not recoverable, so each is re-created in
mini-FORTRAN with the same algorithmic skeleton and the same locality
structure (loop nesting, array dimensionality, row- vs column-wise
reference order); see DESIGN.md §3 for the substitution rationale.

=========  ==============================================================
MAIN       atmospheric-model driver: 3-deep time-stepping nest mixing
           column sweeps with a row-wise accumulation (UIARL style)
FDJAC      forward-difference Jacobian (MINPACK ``fdjac2``)
TQL        symmetric tridiagonal QL eigensolver with eigenvector
           accumulation (EISPACK ``tql2``)
FIELD      Jacobi relaxation of a potential field, with a row-wise
           copy-back pass
INIT       array-initialization kernel mixing column- and row-wise fills
APPROX     Chebyshev least-squares fit via normal equations
HYBRJ      Powell hybrid step with analytic Jacobian (MINPACK ``hybrj``)
CONDUCT    explicit heat-conduction time stepping on a 270-page grid
HWSCRT     Helmholtz solver on a square via SOR (FISHPACK ``hwscrt``)
=========  ==============================================================

Use :func:`get_workload` / :func:`all_workloads` from
:mod:`repro.workloads.catalog`.
"""

from repro.workloads.catalog import (
    Workload,
    all_workloads,
    get_workload,
    workload_names,
)

__all__ = ["Workload", "all_workloads", "get_workload", "workload_names"]
