"""HWSCRT — Helmholtz equation on a rectangle (FISHPACK ``hwscrt``).

Solves ``∇²u + λu = f`` on a 64x64 grid by alternating-direction line
relaxation: each iteration first relaxes along columns (storage order),
then along rows (a 64-page stride-phase, as in FISHPACK's row-based
tridiagonal solves).  A 64-page solution/source grid plus four boundary
vectors and a workspace vector give the 69 pages of virtual space the
paper quotes for HWSCRT.
"""

SOURCE = """
PROGRAM HWSCRT
PARAMETER (M = 64)
DIMENSION F(M, M), BDA(M), BDB(M), BDC(M), BDD(M), W(M)
C ---- boundary data and workspace ----
DO 10 I = 1, M
  BDA(I) = SIN(FLOAT(I) * 0.05)
  BDB(I) = COS(FLOAT(I) * 0.05)
  BDC(I) = 0.0
  BDD(I) = FLOAT(I) / FLOAT(M)
  W(I) = 0.0
10 CONTINUE
C ---- interior source term ----
DO 20 J = 2, M - 1
  DO 30 I = 2, M - 1
    F(I, J) = 0.001 * FLOAT(I - J)
30 CONTINUE
20 CONTINUE
C ---- impose Dirichlet boundaries from the boundary vectors ----
DO 40 I = 1, M
  F(1, I) = BDA(I)
  F(M, I) = BDB(I)
  F(I, 1) = BDC(I)
  F(I, M) = BDD(I)
40 CONTINUE
C ---- ADI-style line relaxation (lambda = -0.5) ----
DO 50 ITER = 1, 3
C   column phase: relax down each column (storage order)
  DO 60 J = 2, M - 1
    DO 70 I = 2, M - 1
      RES = 0.25 * (F(I-1, J) + F(I+1, J) + F(I, J-1) + F(I, J+1))&
            - (1.0 + 0.125 * 0.5) * F(I, J)
      F(I, J) = F(I, J) + 1.5 * RES
70  CONTINUE
60 CONTINUE
C   row phase: relax along each row (stride M through storage)
  DO 80 I = 2, M - 1
    DO 90 J = 2, M - 1
      RES = 0.25 * (F(I-1, J) + F(I+1, J) + F(I, J-1) + F(I, J+1))&
            - (1.0 + 0.125 * 0.5) * F(I, J)
      F(I, J) = F(I, J) + 1.5 * RES
90  CONTINUE
80 CONTINUE
C   track the per-column residual norm in the workspace vector
  RNORM = 0.0
  DO 100 J = 1, M
    W(J) = ABS(F(2, J)) + ABS(F(M - 1, J))
    RNORM = RNORM + W(J)
100 CONTINUE
  PRINT *, ITER, RNORM
50 CONTINUE
END
"""
