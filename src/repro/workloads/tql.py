"""TQL — symmetric tridiagonal QL eigensolver (EISPACK ``tql2``).

Computes all eigenvalues of the (-1, 2, -1) Toeplitz tridiagonal matrix
by the QL method with implicit-style shifts, accumulating the plane
rotations into the eigenvector matrix ``Z`` — the inner rotation loop
walks two ``Z`` columns at a time, the signature column-wise access of
the EISPACK eigensolvers.  Convergence is data dependent, so the trace
length is genuinely a function of the numerics.
"""

SOURCE = """
PROGRAM TQL
PARAMETER (N = 24)
DIMENSION D(N), E(N), Z(N, N)
C ---- tridiagonal matrix (-1, 2, -1) and Z = identity ----
DO 10 J = 1, N
  DO 20 I = 1, N
    Z(I, J) = 0.0
20 CONTINUE
  Z(J, J) = 1.0
  D(J) = 2.0
  E(J) = -1.0
10 CONTINUE
E(N) = 0.0
CALL TQL2(D, E, Z)
END

SUBROUTINE TQL2(D, E, Z)
C EISPACK-style QL iteration with eigenvector accumulation
PARAMETER (N = 24)
DIMENSION D(N), E(N), Z(N, N)
DO 30 L = 1, N
  DO 40 ITER = 1, 30
C   ---- look for a negligible subdiagonal element at or after L ----
    MM = N
    DO 50 K = L, N - 1
      DD = ABS(D(K)) + ABS(D(K+1))
      IF (ABS(E(K)) <= 1.0E-12 * DD) THEN
        MM = K
        EXIT
      ENDIF
50  CONTINUE
    IF (MM == L) EXIT
C   ---- form the Wilkinson-style shift ----
    G = (D(L+1) - D(L)) / (2.0 * E(L))
    R = SQRT(G * G + 1.0)
    G = D(MM) - D(L) + E(L) / (G + SIGN(R, G))
    S = 1.0
    C = 1.0
    P = 0.0
C   ---- QL sweep: rotations from MM-1 down to L ----
    DO 60 I1 = 1, MM - L
      I = MM - I1
      F = S * E(I)
      B = C * E(I)
      R = SQRT(F * F + G * G)
      E(I+1) = R
      IF (R == 0.0) THEN
        D(I+1) = D(I+1) - P
        E(MM) = 0.0
        EXIT
      ENDIF
      S = F / R
      C = G / R
      G = D(I+1) - P
      R = (D(I) - G) * S + 2.0 * C * B
      P = S * R
      D(I+1) = G + P
      G = C * R - B
C     ---- accumulate the rotation into eigenvector columns I, I+1 ----
      DO 70 K = 1, N
        F = Z(K, I+1)
        Z(K, I+1) = S * Z(K, I) + C * F
        Z(K, I) = C * Z(K, I) - S * F
70    CONTINUE
60  CONTINUE
    D(L) = D(L) - P
    E(L) = G
    E(MM) = 0.0
40 CONTINUE
30 CONTINUE
RETURN
END
"""
