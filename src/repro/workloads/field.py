"""FIELD — Jacobi relaxation of a potential field.

Alternates a column-order five-point stencil sweep with a deliberately
row-order copy-back pass (the access pattern found in real package
code), so the two halves of every iteration stress opposite storage
orders on 32-page arrays.
"""

SOURCE = """
PROGRAM FIELD
PARAMETER (NX = 64, NY = 32)
DIMENSION PHI(NX, NY), PSI(NX, NY), SRC(NX, NY)
C ---- zero field, point charges in the interior ----
DO 10 J = 1, NY
  DO 20 I = 1, NX
    PHI(I, J) = 0.0
    SRC(I, J) = 0.0
20 CONTINUE
10 CONTINUE
SRC(NX / 2, NY / 2) = 100.0
SRC(NX / 4, 3 * NY / 4) = -50.0
C ---- Jacobi sweeps ----
DO 30 ITER = 1, 6
C   stencil pass in storage (column) order
  DO 40 J = 2, NY - 1
    DO 50 I = 2, NX - 1
      PSI(I, J) = 0.25 * (PHI(I-1, J) + PHI(I+1, J) + PHI(I, J-1)&
                  + PHI(I, J+1) + SRC(I, J))
50  CONTINUE
40 CONTINUE
C   copy-back pass in row order
  DO 60 I = 2, NX - 1
    DO 70 J = 2, NY - 1
      PHI(I, J) = PSI(I, J)
70  CONTINUE
60 CONTINUE
30 CONTINUE
END
"""
