"""HYBRJ — Powell hybrid step with analytic Jacobian (MINPACK ``hybrj``).

Structured as MINPACK structures it: the driver iterates, CALLing the
user-supplied residual/Jacobian routine (``FCN`` with both roles) and
library-style helpers that form and solve the normal system.  The
frontend's inliner flattens the calls, producing exactly the loop nest
the compiler of the paper's era would analyze after its own
interprocedural pass.  Four damped-Newton iterations on the tridiagonal
test system.
"""

SOURCE = """
PROGRAM HYBRJ
PARAMETER (N = 24)
DIMENSION X(N), F(N), FJAC(N, N), A(N, N), B(N), P(N)
C ---- starting point ----
DO 10 I = 1, N
  X(I) = -1.0
10 CONTINUE
C ---- damped Newton iterations ----
DO 20 ITER = 1, 4
  CALL FCN(X, F)
  CALL FJACN(X, FJAC)
  CALL NORMEQ(FJAC, F, A, B)
  CALL SOLVE(A, B, P)
  DO 160 I = 1, N
    X(I) = X(I) + 0.8 * P(I)
160 CONTINUE
20 CONTINUE
END

SUBROUTINE FCN(X, F)
C residuals of the tridiagonal test function
PARAMETER (N = 24)
DIMENSION X(N), F(N)
DO 30 I = 1, N
  T = (3.0 - 2.0 * X(I)) * X(I)
  T1 = 0.0
  IF (I > 1) T1 = X(I-1)
  T2 = 0.0
  IF (I < N) T2 = X(I+1)
  F(I) = T - T1 - 2.0 * T2 + 1.0
30 CONTINUE
RETURN
END

SUBROUTINE FJACN(X, FJAC)
C analytic Jacobian, stored column-wise
PARAMETER (N = 24)
DIMENSION X(N), FJAC(N, N)
DO 40 J = 1, N
  DO 50 I = 1, N
    FJAC(I, J) = 0.0
50 CONTINUE
40 CONTINUE
DO 60 I = 1, N
  FJAC(I, I) = 3.0 - 4.0 * X(I)
  IF (I > 1) FJAC(I, I-1) = -1.0
  IF (I < N) FJAC(I, I+1) = -2.0
60 CONTINUE
RETURN
END

SUBROUTINE NORMEQ(FJAC, F, A, B)
C normal system A = J'J, B = -J'F (column-wise dot products)
PARAMETER (N = 24)
DIMENSION FJAC(N, N), F(N), A(N, N), B(N)
DO 70 K = 1, N
  DO 80 L = 1, N
    S = 0.0
    DO 90 I = 1, N
      S = S + FJAC(I, K) * FJAC(I, L)
90  CONTINUE
    A(K, L) = S
80 CONTINUE
  S = 0.0
  DO 100 I = 1, N
    S = S + FJAC(I, K) * F(I)
100 CONTINUE
  B(K) = -S
70 CONTINUE
RETURN
END

SUBROUTINE SOLVE(A, B, P)
C Gaussian elimination then back substitution into the step P
PARAMETER (N = 24)
DIMENSION A(N, N), B(N), P(N)
DO 110 K = 1, N - 1
  DO 120 L = K + 1, N
    FMUL = A(L, K) / A(K, K)
    DO 130 J = K + 1, N
      A(L, J) = A(L, J) - FMUL * A(K, J)
130 CONTINUE
    B(L) = B(L) - FMUL * B(K)
120 CONTINUE
110 CONTINUE
DO 140 K1 = 1, N
  K = N + 1 - K1
  S = B(K)
  IF (K < N) THEN
    DO 150 L = K + 1, N
      S = S - A(K, L) * P(L)
150 CONTINUE
  ENDIF
  P(K) = S / A(K, K)
140 CONTINUE
RETURN
END
"""
