"""CONDUCT — explicit heat-conduction time stepping.

Two 64x134 temperature grids plus per-row flux/diagnostic vectors — a
270-page virtual space, matching the paper's description of CONDUCT.
Each time step runs an explicit five-point update and a copy-back in
storage (column) order, then a *row-wise* heat-flux accumulation (the
per-latitude energy diagnostic such codes print every step).  The
alternation between a small column-order locality and a 134-page
row-order phase is what gives CONDUCT its strongly phase-varying memory
demand.
"""

SOURCE = """
PROGRAM CONDUCT
PARAMETER (NX = 64, NY = 134)
DIMENSION T(NX, NY), TNEW(NX, NY), FLUX(NX), DIAG(NX)
C ---- initial temperature field: cold block, hot strip at J = 1 ----
DO 10 J = 1, NY
  DO 20 I = 1, NX
    T(I, J) = 0.0
20 CONTINUE
10 CONTINUE
DO 30 I = 1, NX
  T(I, 1) = 100.0
  FLUX(I) = 0.0
  DIAG(I) = 0.0
30 CONTINUE
C ---- explicit time steps ----
DO 40 STEP = 1, 2
  DO 50 J = 2, NY - 1
    DO 60 I = 2, NX - 1
      TNEW(I, J) = T(I, J) + 0.2 * (T(I-1, J) + T(I+1, J)&
                   + T(I, J-1) + T(I, J+1) - 4.0 * T(I, J))
60  CONTINUE
50 CONTINUE
C   copy the interior back and re-impose the boundary strip
  DO 70 J = 2, NY - 1
    DO 80 I = 2, NX - 1
      T(I, J) = TNEW(I, J)
80  CONTINUE
70 CONTINUE
  DO 90 I = 1, NX
    T(I, 1) = 100.0
90 CONTINUE
C   per-row energy diagnostic: row-wise sweep over the whole grid
  DO 100 I = 1, NX
    S = 0.0
    DO 110 J = 1, NY
      S = S + T(I, J)
110 CONTINUE
    FLUX(I) = S
    DIAG(I) = DIAG(I) + S * 0.5
100 CONTINUE
  PRINT *, STEP, S
40 CONTINUE
END
"""
