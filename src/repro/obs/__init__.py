"""Structured observability for the paging stack.

The simulators and policies stay silent by default (``tracer is None``
on every hot path, so the cost of the instrumentation is one attribute
test on fault/eviction paths only).  Passing a :class:`Tracer` turns on
a typed event stream — faults, evictions, directive decisions, lock
lifecycle, suspends, resident-set samples — that sinks can buffer,
persist as JSONL, or aggregate, and that :mod:`repro.obs.metrics`
turns into fault inter-arrival histograms, per-array attribution, lock
hold times, and MEM-over-time curves for the profile reports.
"""

from repro.obs.events import (
    EVENT_TYPES,
    Admit,
    AllocateDeny,
    AllocateGrant,
    AllocateRequest,
    Defer,
    Depart,
    Event,
    Evict,
    Fault,
    PoolSample,
    ForcedRelease,
    JobDone,
    JobFail,
    JobRetry,
    JobStart,
    LevelChange,
    Lock,
    ResidentSample,
    Resume,
    Suspend,
    Unlock,
    WorkerHeartbeat,
    event_from_dict,
)
from repro.obs.metrics import Profile, build_profile, load_events
from repro.obs.report import render_profile
from repro.obs.sinks import (
    BroadcastSink,
    JsonlSink,
    QueueSink,
    RingBufferSink,
    Sink,
    SummarySink,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "EVENT_TYPES",
    "Admit",
    "AllocateDeny",
    "AllocateGrant",
    "AllocateRequest",
    "Defer",
    "Depart",
    "Event",
    "Evict",
    "Fault",
    "PoolSample",
    "ForcedRelease",
    "JobDone",
    "JobFail",
    "JobRetry",
    "JobStart",
    "LevelChange",
    "Lock",
    "ResidentSample",
    "Resume",
    "Suspend",
    "Unlock",
    "WorkerHeartbeat",
    "event_from_dict",
    "Profile",
    "build_profile",
    "load_events",
    "render_profile",
    "BroadcastSink",
    "JsonlSink",
    "QueueSink",
    "RingBufferSink",
    "Sink",
    "SummarySink",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
]
