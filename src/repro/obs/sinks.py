"""Event sinks: where a tracer's stream goes.

* :class:`RingBufferSink` — keep the last N events in memory (or all of
  them), for tests and in-process profiling;
* :class:`JsonlSink` — persist one JSON object per line, the on-disk
  timeline format under ``results/timelines/``;
* :class:`SummarySink` — constant-space aggregation (event counts, PF,
  peak residency) for cheap always-on accounting.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.events import Event, Fault, ResidentSample


class Sink:
    """Protocol: receive events, then be closed exactly once."""

    def handle(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; default is a no-op."""


class RingBufferSink(Sink):
    """Keep the most recent ``capacity`` events (None = unbounded)."""

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None)")
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)
        self.total_seen = 0

    def handle(self, event: Event) -> None:
        self._buffer.append(event)
        self.total_seen += 1

    @property
    def events(self) -> List[Event]:
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlSink(Sink):
    """Append events to ``path`` as JSON lines.

    The file is opened lazily on the first event and truncated then, so
    constructing the sink is free and an eventless run leaves no file.
    ``append=True`` keeps whatever is already there — the sweep engine
    uses it so a resumed run extends the original event log instead of
    erasing it.
    """

    def __init__(self, path: Union[str, Path], append: bool = False):
        self.path = Path(path)
        self.append = append
        self.count = 0
        self._fh = None

    def handle(self, event: Event) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a" if self.append else "w")
        json.dump(event.to_dict(), self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class SummarySink(Sink):
    """Constant-space aggregation over the stream."""

    def __init__(self):
        self.counts: Counter = Counter()
        self.faults = 0
        self.peak_resident = 0
        self.last_time = 0

    def handle(self, event: Event) -> None:
        self.counts[event.kind] += 1
        if event.time > self.last_time:
            self.last_time = event.time
        if isinstance(event, Fault):
            self.faults += 1
            if event.resident > self.peak_resident:
                self.peak_resident = event.resident
        elif isinstance(event, ResidentSample):
            if event.resident > self.peak_resident:
                self.peak_resident = event.resident

    def summary(self) -> Dict[str, object]:
        return {
            "events": sum(self.counts.values()),
            "by_kind": dict(sorted(self.counts.items())),
            "faults": self.faults,
            "peak_resident": self.peak_resident,
            "last_time": self.last_time,
        }
