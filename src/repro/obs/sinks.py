"""Event sinks: where a tracer's stream goes.

* :class:`RingBufferSink` — keep the last N events in memory (or all of
  them), for tests and in-process profiling;
* :class:`JsonlSink` — persist one JSON object per line, the on-disk
  timeline format under ``results/timelines/``;
* :class:`SummarySink` — constant-space aggregation (event counts, PF,
  peak residency) for cheap always-on accounting;
* :class:`BroadcastSink` — thread-safe fan-out to a mutable set of
  downstream sinks (the service daemon's live event feed);
* :class:`QueueSink` — push events onto a ``queue.Queue`` so another
  thread (a connection handler) can drain them at its own pace.
"""

from __future__ import annotations

import json
import queue
import threading
from collections import Counter, deque
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.events import Event, Fault, ResidentSample


class Sink:
    """Protocol: receive events, then be closed exactly once."""

    def handle(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; default is a no-op."""


class RingBufferSink(Sink):
    """Keep the most recent ``capacity`` events (None = unbounded)."""

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None)")
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)
        self.total_seen = 0

    def handle(self, event: Event) -> None:
        self._buffer.append(event)
        self.total_seen += 1

    @property
    def events(self) -> List[Event]:
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlSink(Sink):
    """Append events to ``path`` as JSON lines.

    The file is opened lazily on the first event and truncated then, so
    constructing the sink is free and an eventless run leaves no file.
    ``append=True`` keeps whatever is already there — the sweep engine
    uses it so a resumed run extends the original event log instead of
    erasing it.
    """

    def __init__(self, path: Union[str, Path], append: bool = False):
        self.path = Path(path)
        self.append = append
        self.count = 0
        self._fh = None

    def handle(self, event: Event) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a" if self.append else "w")
        json.dump(event.to_dict(), self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class SummarySink(Sink):
    """Constant-space aggregation over the stream."""

    def __init__(self):
        self.counts: Counter = Counter()
        self.faults = 0
        self.peak_resident = 0
        self.last_time = 0

    def handle(self, event: Event) -> None:
        self.counts[event.kind] += 1
        if event.time > self.last_time:
            self.last_time = event.time
        if isinstance(event, Fault):
            self.faults += 1
            if event.resident > self.peak_resident:
                self.peak_resident = event.resident
        elif isinstance(event, ResidentSample):
            if event.resident > self.peak_resident:
                self.peak_resident = event.resident

    def summary(self) -> Dict[str, object]:
        return {
            "events": sum(self.counts.values()),
            "by_kind": dict(sorted(self.counts.items())),
            "faults": self.faults,
            "peak_resident": self.peak_resident,
            "last_time": self.last_time,
        }


class BroadcastSink(Sink):
    """Fan one event stream out to many downstream sinks.

    Subscribers come and go while events flow — the daemon keeps one
    broadcast per engine loop and each ``watch`` connection subscribes
    its own :class:`QueueSink` — so membership changes are guarded by a
    lock and delivery snapshots the member list (a subscriber added
    mid-event sees the *next* event).  A subscriber that raises is
    dropped rather than poisoning the stream for everyone else.

    Closing the broadcast does **not** close subscribers: their owners
    (connection handlers) close them when the connection ends.
    """

    def __init__(self, *sinks: Sink):
        self._lock = threading.Lock()
        self._sinks: List[Sink] = list(sinks)

    def subscribe(self, sink: Sink) -> None:
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)

    def unsubscribe(self, sink: Sink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sinks)

    def handle(self, event: Event) -> None:
        with self._lock:
            members = list(self._sinks)
        dead = []
        for sink in members:
            try:
                sink.handle(event)
            except Exception:
                dead.append(sink)
        for sink in dead:
            self.unsubscribe(sink)


class QueueSink(Sink):
    """Bridge the event stream to another thread via ``queue.Queue``.

    ``close()`` enqueues a ``None`` sentinel so the consumer's blocking
    ``get`` loop terminates.  A bounded queue drops the *oldest* events
    on overflow (a slow watcher lags, it does not stall the engine).
    """

    def __init__(self, maxsize: int = 0):
        self.queue: "queue.Queue" = queue.Queue(maxsize=maxsize)
        self.dropped = 0

    def handle(self, event: Event) -> None:
        while True:
            try:
                self.queue.put_nowait(event)
                return
            except queue.Full:
                try:
                    self.queue.get_nowait()
                    self.dropped += 1
                except queue.Empty:  # racing consumer drained it
                    continue

    def close(self) -> None:
        self.queue.put(None)
