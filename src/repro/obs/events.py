"""Typed events emitted by the paging stack.

Every event carries ``time``: the virtual reference index at which it
happened (directive-driven events use the directive's recorded
position; multiprogramming events use the global clock).  Events from
the multiprogrammed simulator additionally carry ``proc``, the name of
the process they belong to.

The schema is deliberately flat — each event serializes to one JSON
object via :meth:`Event.to_dict`, with a ``kind`` discriminator, so a
JSONL event file round-trips through :func:`event_from_dict`.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields
from typing import ClassVar, Dict, Tuple, Type


@dataclass(frozen=True)
class Event:
    """Base class: one observation at virtual time ``time``."""

    kind: ClassVar[str] = "event"

    time: int

    def to_dict(self) -> dict:
        d: dict = {"kind": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = [
                    list(v) if isinstance(v, tuple) else v for v in value
                ]
            d[f.name] = value
        return d


@dataclass(frozen=True)
class Fault(Event):
    """A demand fetch: ``page`` was absent and is now resident.

    ``resident`` is the resident-set size *after* the page came in —
    the memory the process occupies for the fault's service interval,
    which is exactly what the ST index integrates.
    """

    kind: ClassVar[str] = "fault"

    page: int
    resident: int
    proc: str = ""


@dataclass(frozen=True)
class Evict(Event):
    """A page left the resident set.

    ``reason`` states which mechanism evicted it: ``"capacity"`` (fixed
    partition full), ``"shrink"`` (CD allocation target dropped),
    ``"limit"`` (physical-memory ceiling), ``"window"`` (WS expiry),
    or ``"pff-shrink"`` (PFF use-bit sweep).
    """

    kind: ClassVar[str] = "evict"

    page: int
    reason: str = "capacity"
    proc: str = ""


@dataclass(frozen=True)
class AllocateRequest(Event):
    """An ALLOCATE directive arrived: the full else-chain of requests,
    as ``(priority_index, pages)`` pairs, outermost first."""

    kind: ClassVar[str] = "allocate_request"

    site: int
    requests: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class AllocateGrant(Event):
    """The policy granted ``pages`` to the request with ``priority_index``;
    ``target`` is the allocation target after applying the grant."""

    kind: ClassVar[str] = "allocate_grant"

    site: int
    pages: int
    priority_index: int
    target: int


@dataclass(frozen=True)
class AllocateDeny(Event):
    """One request of an ALLOCATE chain was not satisfied.

    ``reason``: ``"over-limit"`` (exceeds physical memory) or
    ``"deferred"`` (nothing affordable with PI > 1: the program keeps
    its current allocation, Figure 6's "continue").
    """

    kind: ClassVar[str] = "allocate_deny"

    site: int
    pages: int
    priority_index: int
    reason: str = "over-limit"


@dataclass(frozen=True)
class Lock(Event):
    """Pages soft-pinned by a LOCK directive.  ``pages`` holds only the
    pages this event actually pinned (pages already pinned by another
    site are not re-counted), so pin bookkeeping balances exactly."""

    kind: ClassVar[str] = "lock"

    site: int
    pages: Tuple[int, ...]
    priority_index: int


@dataclass(frozen=True)
class Unlock(Event):
    """Pins dropped by an UNLOCK directive (only pages that were
    actually pinned appear)."""

    kind: ClassVar[str] = "unlock"

    site: int
    pages: Tuple[int, ...]


@dataclass(frozen=True)
class ForcedRelease(Event):
    """Pins dropped without an UNLOCK.

    ``reason``: ``"pressure"`` (the OS released the highest-PJ site to
    relieve memory contention) or ``"superseded"`` (the same LOCK site
    re-executed and moved its pin to new pages).
    """

    kind: ClassVar[str] = "forced_release"

    site: int
    pages: Tuple[int, ...]
    priority_index: int
    reason: str = "pressure"


@dataclass(frozen=True)
class Suspend(Event):
    """A process was suspended/swapped (CD's PI=1 swap mechanism or
    multiprogramming load control).  ``frames`` is the allocation the
    suspension released back to the pool (0 outside the pool
    scheduler), so the frame ledger replays from the event stream."""

    kind: ClassVar[str] = "suspend"

    reason: str = "swap"
    proc: str = ""
    frames: int = 0


@dataclass(frozen=True)
class Resume(Event):
    """A swapped-out process became runnable again."""

    kind: ClassVar[str] = "resume"

    proc: str = ""


@dataclass(frozen=True)
class Admit(Event):
    """The load controller admitted ``proc`` into the memory pool with
    an allocation of ``frames`` frames.  ``waited`` is how long the
    process sat in the deferral queue (0 for immediate admission)."""

    kind: ClassVar[str] = "admit"

    proc: str
    frames: int
    waited: int = 0


@dataclass(frozen=True)
class Defer(Event):
    """The load controller declined to admit ``proc`` right now.

    ``frames`` is the allocation the process would have needed;
    ``reason``: ``"no-frames"`` (free pool below the demand) or
    ``"queued"`` (FIFO head-of-line: earlier deferrals go first).
    """

    kind: ClassVar[str] = "defer"

    proc: str
    frames: int
    reason: str = "no-frames"


@dataclass(frozen=True)
class Depart(Event):
    """``proc`` finished and released its allocation back to the pool."""

    kind: ClassVar[str] = "depart"

    proc: str
    frames: int
    refs: int
    faults: int


@dataclass(frozen=True)
class PoolSample(Event):
    """Periodic snapshot of the multiprogramming pool: frames in use
    and the process census by state."""

    kind: ClassVar[str] = "pool_sample"

    used: int
    free: int
    admitted: int
    deferred: int
    suspended: int


@dataclass(frozen=True)
class ResidentSample(Event):
    """Resident-set size observed at ``time``.

    The event-driven simulator emits one sample every ``sample_interval``
    references; the closed-form CD replay emits samples at change points
    only (the resident size is piecewise constant between faults).
    """

    kind: ClassVar[str] = "resident_sample"

    resident: int
    proc: str = ""


@dataclass(frozen=True)
class LevelChange(Event):
    """Adaptive CD moved a directive site's level preference."""

    kind: ClassVar[str] = "level_change"

    site: int
    old_level: int
    new_level: int


# -- engine lifecycle ---------------------------------------------------------
#
# The sweep engine (:mod:`repro.engine`) narrates its supervision
# decisions through the same tracer the paging stack uses, so one
# events.jsonl holds both worlds.  Engine events use a per-run sequence
# number for ``time`` (job lifecycles have no virtual reference index).


@dataclass(frozen=True)
class JobStart(Event):
    """One attempt of a job began in worker process ``worker``."""

    kind: ClassVar[str] = "job_start"

    job: str
    attempt: int
    worker: int


@dataclass(frozen=True)
class JobRetry(Event):
    """An attempt failed and the job will be retried after ``backoff``
    seconds.  ``attempt`` is the attempt that just failed (1-based)."""

    kind: ClassVar[str] = "job_retry"

    job: str
    attempt: int
    error: str
    backoff: float


@dataclass(frozen=True)
class JobFail(Event):
    """A job failed permanently (retries exhausted, or a dependency
    failed before it could run)."""

    kind: ClassVar[str] = "job_fail"

    job: str
    attempts: int
    error: str


@dataclass(frozen=True)
class JobDone(Event):
    """A job completed; ``seconds`` is the successful attempt's wall
    time (0.0 for results restored from a run ledger on resume)."""

    kind: ClassVar[str] = "job_done"

    job: str
    attempts: int
    seconds: float


@dataclass(frozen=True)
class WorkerHeartbeat(Event):
    """A live worker observed by the supervisor's poll loop (emitted at
    most once per heartbeat interval per worker)."""

    kind: ClassVar[str] = "worker_heartbeat"

    worker: int
    job: str


#: kind discriminator -> event class (drives JSONL round-tripping)
EVENT_TYPES: Dict[str, Type[Event]] = {
    cls.kind: cls
    for cls in (
        Admit,
        Defer,
        Depart,
        PoolSample,
        Fault,
        Evict,
        AllocateRequest,
        AllocateGrant,
        AllocateDeny,
        Lock,
        Unlock,
        ForcedRelease,
        Suspend,
        Resume,
        ResidentSample,
        LevelChange,
        JobStart,
        JobRetry,
        JobFail,
        JobDone,
        WorkerHeartbeat,
    )
}


def event_from_dict(data: dict) -> Event:
    """Rebuild a typed event from its :meth:`Event.to_dict` form."""
    kind = data.get("kind")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    kwargs = {}
    for f in fields(cls):
        if f.name not in data and f.default is not MISSING:
            continue  # an older log predating this field: keep the default
        value = data[f.name]
        if isinstance(value, list):
            value = tuple(
                tuple(v) if isinstance(v, list) else v for v in value
            )
        kwargs[f.name] = value
    return cls(**kwargs)
