"""Derived metrics over an event stream.

Everything here is computed from the typed events alone (plus the
trace's array layout for attribution), so the same analysis applies to
an in-memory ring buffer, a JSONL timeline file, or the synthesized
stream of the closed-form CD replay:

* fault inter-arrival histogram (power-of-two buckets);
* per-array fault attribution (which array's pages miss);
* lock hold-time distribution, split by how the pin ended;
* MEM-over-time curve, downsampled to a fixed number of buckets.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.events import (
    AllocateDeny,
    AllocateGrant,
    Event,
    Evict,
    Fault,
    ForcedRelease,
    Lock,
    ResidentSample,
    Unlock,
    event_from_dict,
)


def load_events(path: Union[str, Path]) -> List[Event]:
    """Read a JSONL timeline back into typed events."""
    events: List[Event] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


@dataclass
class LockHold:
    """One pin's lifetime, from LOCK to whatever ended it."""

    page: int
    site: int
    priority_index: int
    start: int
    end: Optional[int] = None  # None: still pinned at end of trace
    ended_by: str = "open"  # "unlock" | "forced" | "superseded" | "open"

    @property
    def duration(self) -> Optional[int]:
        if self.end is None:
            return None
        return self.end - self.start


@dataclass
class Profile:
    """Everything the profile report renders."""

    event_counts: Dict[str, int] = field(default_factory=dict)
    fault_times: List[int] = field(default_factory=list)
    interarrival: List[Tuple[str, int]] = field(default_factory=list)
    per_array_faults: Dict[str, int] = field(default_factory=dict)
    evict_reasons: Dict[str, int] = field(default_factory=dict)
    grants: int = 0
    denies: int = 0
    deny_reasons: Dict[str, int] = field(default_factory=dict)
    lock_holds: List[LockHold] = field(default_factory=list)
    mem_curve: List[Tuple[int, float]] = field(default_factory=list)
    peak_resident: int = 0
    mean_resident: float = 0.0

    @property
    def faults(self) -> int:
        return len(self.fault_times)

    def closed_holds(self) -> List[LockHold]:
        return [h for h in self.lock_holds if h.duration is not None]


_BUCKET_LABELS = "1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65-128"


def interarrival_histogram(times: List[int]) -> List[Tuple[str, int]]:
    """Histogram of gaps between consecutive faults, in power-of-two
    buckets (last bucket is open-ended)."""
    gaps = [b - a for a, b in zip(times, times[1:])]
    buckets = [0] * (len(_BUCKET_LABELS) + 1)
    for gap in gaps:
        index = 0
        top = 1
        while gap > top and index < len(_BUCKET_LABELS):
            index += 1
            top *= 2
        buckets[index] += 1
    labelled = list(zip(_BUCKET_LABELS, buckets))  # zip stops before overflow
    labelled.append((f">{2 ** (len(_BUCKET_LABELS) - 1)}", buckets[-1]))
    return labelled


def attribute_faults(
    fault_pages: List[int], array_pages: Dict[str, Tuple[int, int]]
) -> Dict[str, int]:
    """Count faults per array from each array's (first_page, count)."""
    attribution = {name: 0 for name in array_pages}
    other = 0
    for page in fault_pages:
        for name, (first, count) in array_pages.items():
            if first <= page < first + count:
                attribution[name] += 1
                break
        else:
            other += 1
    if other:
        attribution["(other)"] = other
    return attribution


def lock_hold_times(events: List[Event]) -> List[LockHold]:
    """Pair each pinned page's Lock with the event that ended the pin."""
    open_holds: Dict[int, LockHold] = {}
    holds: List[LockHold] = []
    for event in events:
        if isinstance(event, Lock):
            for page in event.pages:
                hold = LockHold(
                    page=page,
                    site=event.site,
                    priority_index=event.priority_index,
                    start=event.time,
                )
                open_holds[page] = hold
                holds.append(hold)
        elif isinstance(event, Unlock):
            for page in event.pages:
                hold = open_holds.pop(page, None)
                if hold is not None:
                    hold.end = event.time
                    hold.ended_by = "unlock"
        elif isinstance(event, ForcedRelease):
            ended = "superseded" if event.reason == "superseded" else "forced"
            for page in event.pages:
                hold = open_holds.pop(page, None)
                if hold is not None:
                    hold.end = event.time
                    hold.ended_by = ended
    return holds


def mem_over_time(
    events: List[Event], buckets: int = 48
) -> List[Tuple[int, float]]:
    """Downsample ResidentSample events to ``buckets`` (time, mean) points.

    Samples may be arbitrarily spaced (the closed-form replay emits them
    at change points only); each bucket averages the samples whose time
    falls inside it and empty buckets inherit the previous value (the
    resident size is piecewise constant between samples).
    """
    samples = [e for e in events if isinstance(e, ResidentSample)]
    if not samples:
        return []
    if len(samples) <= buckets:
        return [(s.time, float(s.resident)) for s in samples]
    t0 = samples[0].time
    t1 = samples[-1].time
    span = max(t1 - t0, 1)
    sums = [0.0] * buckets
    counts = [0] * buckets
    for s in samples:
        index = min((s.time - t0) * buckets // span, buckets - 1)
        sums[index] += s.resident
        counts[index] += 1
    curve: List[Tuple[int, float]] = []
    previous = float(samples[0].resident)
    for i in range(buckets):
        mid = t0 + (2 * i + 1) * span // (2 * buckets)
        if counts[i]:
            previous = sums[i] / counts[i]
        curve.append((mid, previous))
    return curve


def build_profile(
    events: List[Event],
    array_pages: Optional[Dict[str, Tuple[int, int]]] = None,
    buckets: int = 48,
) -> Profile:
    """Compute every derived metric over one event stream."""
    profile = Profile()
    counts: Dict[str, int] = {}
    fault_pages: List[int] = []
    sample_sum = 0
    sample_count = 0
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
        if isinstance(event, Fault):
            profile.fault_times.append(event.time)
            fault_pages.append(event.page)
            if event.resident > profile.peak_resident:
                profile.peak_resident = event.resident
        elif isinstance(event, ResidentSample):
            sample_sum += event.resident
            sample_count += 1
            if event.resident > profile.peak_resident:
                profile.peak_resident = event.resident
        elif isinstance(event, Evict):
            profile.evict_reasons[event.reason] = (
                profile.evict_reasons.get(event.reason, 0) + 1
            )
        elif isinstance(event, AllocateGrant):
            profile.grants += 1
        elif isinstance(event, AllocateDeny):
            profile.denies += 1
            profile.deny_reasons[event.reason] = (
                profile.deny_reasons.get(event.reason, 0) + 1
            )
    profile.event_counts = dict(sorted(counts.items()))
    profile.interarrival = interarrival_histogram(profile.fault_times)
    if array_pages:
        profile.per_array_faults = attribute_faults(fault_pages, array_pages)
    profile.lock_holds = lock_hold_times(events)
    profile.mem_curve = mem_over_time(events, buckets=buckets)
    if sample_count:
        profile.mean_resident = sample_sum / sample_count
    return profile
