"""The tracer: the single emission point the VM stack talks to.

Instrumented code holds an optional tracer (``None`` by default) and
guards every emission with ``if tracer is not None`` — the disabled
cost is one attribute test on fault/eviction paths and nothing at all
on the hit path.  :data:`NULL_TRACER` exists for call sites that want
an object unconditionally; its ``emit`` is a bound no-op.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import Event
    from repro.obs.sinks import Sink


class Tracer:
    """Fan an event stream out to one or more sinks."""

    enabled = True

    def __init__(self, *sinks: "Sink"):
        self.sinks: List["Sink"] = list(sinks)

    def emit(self, event: "Event") -> None:
        for sink in self.sinks:
            sink.handle(event)

    def close(self) -> None:
        """Flush and close every sink (JSONL files in particular)."""
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class NullTracer(Tracer):
    """A tracer that drops everything (near-zero overhead default)."""

    enabled = False

    def __init__(self):
        super().__init__()

    def emit(self, event: "Event") -> None:
        pass


#: shared no-op instance — safe because it holds no state
NULL_TRACER = NullTracer()
