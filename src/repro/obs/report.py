"""Render a :class:`~repro.obs.metrics.Profile` as text or markdown.

The report is the human end of the observability layer: headline
PF/MEM/ST, event counts, the fault inter-arrival histogram, per-array
fault attribution, the MEM-over-time curve, and lock hold times —
the data products that let a table cell or an oracle failure be read
instead of re-instrumented by hand.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.metrics import Profile
from repro.vm.metrics import SimulationResult

_BAR_WIDTH = 40
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _bar(count: int, maximum: int) -> str:
    if maximum <= 0:
        return ""
    return "#" * max(1 if count else 0, count * _BAR_WIDTH // maximum)


def _sparkline(values: List[float]) -> str:
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return _SPARK_CHARS[0] * len(values)
    return "".join(
        _SPARK_CHARS[min(int(v / top * (len(_SPARK_CHARS) - 1) + 0.5), 7)]
        for v in values
    )


def render_profile(
    profile: Profile,
    result: Optional[SimulationResult] = None,
    fmt: str = "text",
    title: str = "paging profile",
) -> str:
    """Render the profile; ``fmt`` is ``"text"`` or ``"markdown"``."""
    if fmt not in ("text", "markdown"):
        raise ValueError(f"unknown report format {fmt!r}")
    md = fmt == "markdown"
    out: List[str] = []

    def heading(text: str) -> None:
        if md:
            out.append(f"## {text}")
        else:
            out.append(text)
            out.append("-" * len(text))
        out.append("")

    if md:
        out.append(f"# {title}")
    else:
        out.append(f"=== {title} ===")
    out.append("")

    if result is not None:
        heading("headline")
        rows = [
            ("policy", f"{result.policy}"
             + (f" ({result.parameter})" if result.parameter is not None else "")),
            ("program", result.program),
            ("PF", f"{result.page_faults}"),
            ("MEM", f"{result.mem_average:.2f}"),
            ("ST", f"{result.space_time:.3e}"),
            ("references", f"{result.references}"),
        ]
        if result.swaps or result.denied_requests or result.lock_releases:
            rows.append(("swaps", str(result.swaps)))
            rows.append(("denied requests", str(result.denied_requests)))
            rows.append(("forced lock releases", str(result.lock_releases)))
        if md:
            out.append("| metric | value |")
            out.append("|---|---|")
            out.extend(f"| {k} | {v} |" for k, v in rows)
        else:
            out.extend(f"  {k:22s} {v}" for k, v in rows)
        out.append("")

    heading("events")
    if md:
        out.append("| kind | count |")
        out.append("|---|---|")
        out.extend(
            f"| {kind} | {count} |"
            for kind, count in profile.event_counts.items()
        )
    else:
        out.extend(
            f"  {kind:18s} {count:8d}"
            for kind, count in profile.event_counts.items()
        )
    out.append("")

    if profile.faults > 1:
        heading("fault inter-arrival (references between faults)")
        peak = max(count for _label, count in profile.interarrival)
        if md:
            out.append("| gap | faults |")
            out.append("|---|---|")
            out.extend(
                f"| {label} | {count} |"
                for label, count in profile.interarrival
            )
        else:
            out.extend(
                f"  {label:>8s} {count:8d} {_bar(count, peak)}"
                for label, count in profile.interarrival
            )
        out.append("")

    job_kinds = ("job_start", "job_retry", "job_fail", "job_done")
    if any(profile.event_counts.get(k) for k in job_kinds):
        heading("engine jobs")
        counts = {k: profile.event_counts.get(k, 0) for k in job_kinds}
        out.append(
            f"  started={counts['job_start']} done={counts['job_done']} "
            f"retried={counts['job_retry']} failed={counts['job_fail']} "
            f"heartbeats={profile.event_counts.get('worker_heartbeat', 0)}"
        )
        out.append("")

    if profile.per_array_faults:
        heading("fault attribution by array")
        total = max(profile.faults, 1)
        items = sorted(
            profile.per_array_faults.items(), key=lambda kv: -kv[1]
        )
        if md:
            out.append("| array | faults | share |")
            out.append("|---|---|---|")
            out.extend(
                f"| {name} | {count} | {count * 100 // total}% |"
                for name, count in items
            )
        else:
            out.extend(
                f"  {name:10s} {count:8d}  ({count * 100 // total}%)"
                for name, count in items
            )
        out.append("")

    if profile.mem_curve:
        heading("resident set over time (MEM curve)")
        values = [v for _t, v in profile.mem_curve]
        out.append(
            ("`" if md else "  ") + _sparkline(values) + ("`" if md else "")
        )
        out.append(
            f"  t={profile.mem_curve[0][0]}"
            f"..{profile.mem_curve[-1][0]}, "
            f"mean={profile.mean_resident:.2f}, "
            f"peak={profile.peak_resident}"
        )
        out.append("")

    if profile.evict_reasons:
        heading("evictions by reason")
        if md:
            out.append("| reason | evictions |")
            out.append("|---|---|")
        out.extend(
            (f"| {reason} | {count} |" if md else f"  {reason:12s} {count:8d}")
            for reason, count in sorted(profile.evict_reasons.items())
        )
        out.append("")

    if profile.grants or profile.denies:
        heading("directive decisions")
        out.append(
            f"  grants={profile.grants} denies={profile.denies}"
            + (
                " ("
                + ", ".join(
                    f"{r}: {c}" for r, c in sorted(profile.deny_reasons.items())
                )
                + ")"
                if profile.deny_reasons
                else ""
            )
        )
        out.append("")

    if profile.lock_holds:
        heading("lock hold times")
        closed = profile.closed_holds()
        open_count = len(profile.lock_holds) - len(closed)
        by_end: dict = {}
        for hold in profile.lock_holds:
            by_end[hold.ended_by] = by_end.get(hold.ended_by, 0) + 1
        out.append(
            f"  pins={len(profile.lock_holds)} "
            + " ".join(f"{k}={v}" for k, v in sorted(by_end.items()))
        )
        if closed:
            durations = sorted(h.duration for h in closed)
            mid = durations[len(durations) // 2]
            out.append(
                f"  hold refs: min={durations[0]} median={mid} "
                f"max={durations[-1]}"
            )
        if open_count:
            out.append(f"  {open_count} pin(s) still held at end of trace")
        out.append("")

    return "\n".join(out).rstrip() + "\n"
