"""Typed diagnostics for the static checker.

A :class:`Diagnostic` is one finding: a rule id, a severity, a message, a
:class:`SourceSpan` pointing into the canonical listing, an optional
structured ``payload`` (machine-readable detail mirrored into the JSON
renderer), and zero or more :class:`FixIt` suggestions.  Diagnostics are
value objects; rules construct them and the renderers in
:mod:`repro.staticcheck.render` turn them into text or JSON.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


class Severity(enum.IntEnum):
    """Finding severity.  Only ERROR findings gate (CLI exit code, CI)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class SourceSpan:
    """A 1-based line range in the program source.

    The mini-FORTRAN AST records one line per node, so most spans cover a
    single line; ``end_line`` widens the span for findings about a region
    (a loop nest, a directive chain).
    """

    line: int
    end_line: Optional[int] = None

    @property
    def last_line(self) -> int:
        return self.end_line if self.end_line is not None else self.line

    def __str__(self) -> str:
        if self.end_line is not None and self.end_line != self.line:
            return f"{self.line}-{self.end_line}"
        return str(self.line)

    def to_json(self) -> Dict[str, int]:
        return {"line": self.line, "end_line": self.last_line}


@dataclass(frozen=True)
class FixIt:
    """A concrete, mechanically applicable suggestion.

    ``replacement`` is the suggested source text for the spanned lines
    (``None`` for advisory fix-its that describe an edit the checker
    cannot synthesize verbatim).
    """

    description: str
    span: SourceSpan
    replacement: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "description": self.description,
            "span": self.span.to_json(),
        }
        if self.replacement is not None:
            data["replacement"] = self.replacement
        return data


@dataclass(frozen=True)
class Diagnostic:
    """One static-checker finding."""

    rule: str  # e.g. "CD103"
    name: str  # e.g. "lock-balance"
    severity: Severity
    message: str
    span: SourceSpan
    payload: Tuple[Tuple[str, Any], ...] = ()
    fixits: Tuple[FixIt, ...] = ()

    @property
    def payload_dict(self) -> Dict[str, Any]:
        return dict(self.payload)

    def sort_key(self) -> Tuple[int, int, str, str]:
        """Source order first, then severity (worst first), then rule id."""
        return (self.span.line, -int(self.severity), self.rule, self.message)

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "rule": self.rule,
            "name": self.name,
            "severity": str(self.severity),
            "message": self.message,
            "span": self.span.to_json(),
        }
        if self.payload:
            data["payload"] = self.payload_dict
        if self.fixits:
            data["fixits"] = [f.to_json() for f in self.fixits]
        return data


def make_diagnostic(
    rule: str,
    name: str,
    severity: Severity,
    message: str,
    line: int,
    end_line: Optional[int] = None,
    payload: Optional[Dict[str, Any]] = None,
    fixits: Optional[List[FixIt]] = None,
) -> Diagnostic:
    """Convenience constructor used by the rule implementations."""
    return Diagnostic(
        rule=rule,
        name=name,
        severity=severity,
        message=message,
        span=SourceSpan(line=line, end_line=end_line),
        payload=tuple(sorted((payload or {}).items())),
        fixits=tuple(fixits or ()),
    )


def worst_severity(diagnostics: List[Diagnostic]) -> Optional[Severity]:
    """The highest severity present, or ``None`` for a clean result."""
    if not diagnostics:
        return None
    return max(d.severity for d in diagnostics)


def error_count(diagnostics: List[Diagnostic]) -> int:
    return sum(1 for d in diagnostics if d.severity is Severity.ERROR)
