"""The rule suite: paper invariants and locality hygiene, verified
statically on the AST and the directive plan.

Directive rules (CD1xx, error) re-derive each invariant from first
principles — Procedure 1 as the structural subtree height, Algorithm 1's
argument stack from the loop-nest path, Algorithm 2's nesting discipline
from the loop tree — and compare against the plan under scrutiny, so
they cross-check the insertion code rather than replaying it.

Hygiene rules (CD2xx warning, CD3xx mixed) flag directives and reference
patterns that are representable but wasteful or dangerous: dead locks,
dominated ALLOCATE arms, non-affine or out-of-bounds subscripts,
zero-trip loops, and row-wise traversals under column-major storage
(with a concrete loop-interchange fix-it).

Bounds checking (CD302) is deliberately conservative so it can gate CI:
it only evaluates subscripts that are affine in loop variables whose
bounds are compile-time constants, and it skips references protected by
a guard that mentions a subscript variable.  Everything it flags is a
reference the interpreter would fault on; everything uncertain is left
to the dynamic oracle.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.locality import SizingStrategy
from repro.analysis.looptree import LoopNode
from repro.analysis.parameters import PageConfig
from repro.analysis.reference_order import (
    ReferenceOrder,
    classify_references,
    expression_variables,
    normalize_expression,
)
from repro.directives.model import AllocateDirective, AllocateRequest
from repro.frontend import ast
from repro.frontend.errors import SemanticError
from repro.frontend.symbols import eval_const_expr
from repro.frontend.unparse import unparse_expr
from repro.staticcheck.diagnostics import (
    Diagnostic,
    FixIt,
    Severity,
    SourceSpan,
    make_diagnostic,
)
from repro.staticcheck.registry import LintContext, rule

# --------------------------------------------------------------------------
# Shared helpers
# --------------------------------------------------------------------------


def _nest_path(node: LoopNode) -> List[LoopNode]:
    """Loops from the nest root down to ``node``, inclusive."""
    path = [node]
    path.extend(node.ancestors())
    path.reverse()
    return path


def _loop_label(node: LoopNode) -> str:
    if node.var:
        return f"DO {node.var}"
    return "DO WHILE"


def _literal_int(expr: ast.Expr) -> Optional[int]:
    """``expr`` folded as a pure-literal integer constant (no names at
    all), or ``None``.  This is what lets ``A(2**2+I)`` classify as
    affine: the ``2**2`` subtree is a constant even though ``**`` is
    not an affine operator."""
    try:
        value = eval_const_expr(expr, {})
    except SemanticError:
        return None
    return value if isinstance(value, int) else None


def _affine(expr: ast.Expr) -> Optional[Tuple[Dict[str, int], int]]:
    """``expr`` as ``sum(coeff[v] * v) + const`` with integer
    coefficients, or ``None`` when not affine (calls, nested array
    references, variable products, divisions, float literals).

    Pure-literal subtrees are constant-folded first, so operators that
    are non-affine in general (``/``, ``**``) still classify when every
    operand is a literal."""
    if isinstance(expr, ast.Num):
        if isinstance(expr.value, int):
            return {}, expr.value
        return None
    if isinstance(expr, ast.Var):
        return {expr.name: 1}, 0
    folded = _literal_int(expr)
    if folded is not None:
        return {}, folded
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _affine(expr.operand)
        if inner is None:
            return None
        coeffs, const = inner
        return {v: -c for v, c in coeffs.items()}, -const
    if isinstance(expr, ast.BinOp) and expr.op in ("+", "-"):
        left = _affine(expr.left)
        right = _affine(expr.right)
        if left is None or right is None:
            return None
        sign = 1 if expr.op == "+" else -1
        coeffs = dict(left[0])
        for v, c in right[0].items():
            coeffs[v] = coeffs.get(v, 0) + sign * c
        return coeffs, left[1] + sign * right[1]
    if isinstance(expr, ast.BinOp) and expr.op == "*":
        left = _affine(expr.left)
        right = _affine(expr.right)
        if left is None or right is None:
            return None
        if not left[0]:  # constant * affine
            scale, other = left[1], right
        elif not right[0]:  # affine * constant
            scale, other = right[1], left
        else:
            return None
        return {v: scale * c for v, c in other[0].items()}, scale * other[1]
    return None


def _substitute_constants(
    coeffs: Dict[str, int], const: int, env: Dict[str, int]
) -> Optional[Tuple[Dict[str, int], int]]:
    """Fold environment constants into the constant term."""
    remaining: Dict[str, int] = {}
    for v, c in coeffs.items():
        if c == 0:
            continue
        if v in env:
            value = env[v]
            if not isinstance(value, int):
                return None
            const += c * value
        else:
            remaining[v] = c
    return remaining, const


def constant_env(program: ast.Program, symbols) -> Dict[str, int]:
    """PARAMETER bindings plus top-level scalars that are constant for
    the whole run: assigned exactly once program-wide, in the straight
    prefix of the body (before any loop or branch), to a compile-time
    constant expression."""
    env: Dict[str, int] = {
        name: value
        for name, value in symbols.params.items()
        if isinstance(value, int)
    }
    assign_counts: Dict[str, int] = {}
    loop_vars: Set[str] = set()
    for stmt in program.walk_statements():
        if isinstance(stmt, ast.DoLoop):
            loop_vars.add(stmt.var)
        if isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.Var):
            name = stmt.target.name
            assign_counts[name] = assign_counts.get(name, 0) + 1
    for stmt in program.body:
        if isinstance(
            stmt, (ast.DoLoop, ast.WhileLoop, ast.IfBlock, ast.LogicalIf)
        ):
            break
        if isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.Var):
            name = stmt.target.name
            if name in loop_vars or assign_counts.get(name, 0) != 1:
                continue
            try:
                value = eval_const_expr(stmt.expr, env)
            except SemanticError:
                continue
            if isinstance(value, int):
                env[name] = value
    return env


def _constant_env(context: LintContext) -> Dict[str, int]:
    return constant_env(context.program, context.symbols)


def _contains_exit(stmts: List[ast.Stmt]) -> bool:
    """True when the statement list contains an ``EXIT`` binding to the
    *current* loop (nested loops capture their own EXITs)."""
    for stmt in stmts:
        if isinstance(stmt, ast.ExitLoop):
            return True
        if isinstance(stmt, ast.IfBlock):
            if any(_contains_exit(body) for _cond, body in stmt.branches):
                return True
        elif isinstance(stmt, ast.LogicalIf):
            if _contains_exit([stmt.stmt]):
                return True
    return False


def _loop_range(
    loop: ast.DoLoop, env: Dict[str, int]
) -> Optional[Tuple[int, int, int]]:
    """``(first, last, trips)`` for a constant-bound loop, or ``None``.

    ``last`` is the *attained* final value of the index (stride-exact),
    not the written upper bound.
    """
    try:
        start = eval_const_expr(loop.start, env)
        end = eval_const_expr(loop.end, env)
        step = eval_const_expr(loop.step, env) if loop.step is not None else 1
    except SemanticError:
        return None
    if not all(isinstance(v, int) for v in (start, end, step)) or step == 0:
        return None
    trips = max(0, (end - start) // step + 1)
    last = start + (trips - 1) * step if trips else start
    return start, last, trips


# --------------------------------------------------------------------------
# CD1xx — directive invariants (error)
# --------------------------------------------------------------------------


@rule(
    "CD101",
    "pi-assignment",
    "error",
    "ALLOCATE priority indexes must match Procedure 1 on the loop path",
)
def check_pi_assignment(context: LintContext) -> Iterator[Diagnostic]:
    priority = context.priority
    for loop_id, directive in sorted(context.plan.allocates.items()):
        node = context.tree.by_id.get(loop_id)
        if node is None:
            continue  # CD102 reports the dangling attachment
        path = _nest_path(node)
        got = [r.priority_index for r in directive.requests]
        if len(got) != len(path):
            continue  # CD102 reports the stack-shape violation
        expected = [priority[n.loop_id] for n in path]
        if got != expected:
            yield make_diagnostic(
                "CD101",
                "pi-assignment",
                Severity.ERROR,
                f"ALLOCATE before {_loop_label(node)} (line {node.loop.line}) "
                f"carries priority indexes {got}, but Procedure 1 assigns "
                f"{expected} to the enclosing loop path",
                line=node.loop.line,
                payload={
                    "loop_id": loop_id,
                    "expected": expected,
                    "got": got,
                },
            )


@rule(
    "CD102",
    "allocate-stack",
    "error",
    "ALLOCATE chains must mirror the Algorithm-1 argument stack",
)
def check_allocate_stack(context: LintContext) -> Iterator[Diagnostic]:
    for loop_id, directive in sorted(context.plan.allocates.items()):
        node = context.tree.by_id.get(loop_id)
        if node is None:
            yield make_diagnostic(
                "CD102",
                "allocate-stack",
                Severity.ERROR,
                f"ALLOCATE is attached to loop id {loop_id}, which does not "
                "exist in the program",
                line=1,
                payload={"loop_id": loop_id},
            )
            continue
        path = _nest_path(node)
        got_pages = [r.pages for r in directive.requests]
        if len(directive.requests) != len(path):
            yield make_diagnostic(
                "CD102",
                "allocate-stack",
                Severity.ERROR,
                f"ALLOCATE before {_loop_label(node)} (line {node.loop.line}) "
                f"has {len(directive.requests)} request(s) but the loop is "
                f"nested {len(path)} deep — Algorithm 1 carries one (PI, X) "
                "pair per enclosing loop",
                line=node.loop.line,
                payload={
                    "loop_id": loop_id,
                    "chain_length": len(directive.requests),
                    "nest_depth": len(path),
                },
            )
            continue
        expected_by_strategy = {}
        for strategy in SizingStrategy:
            analysis = context.analysis(strategy)
            sizes = [
                analysis.report_for(n.loop_id).virtual_size for n in path
            ]
            # Algorithm 1's suffix-max raise: an outer request covers the
            # largest inner request beneath it.
            raised: List[int] = []
            running = 0
            for pages in reversed(sizes):
                running = max(running, pages)
                raised.append(running)
            raised.reverse()
            expected_by_strategy[strategy.value] = raised
        if got_pages not in expected_by_strategy.values():
            yield make_diagnostic(
                "CD102",
                "allocate-stack",
                Severity.ERROR,
                f"ALLOCATE before {_loop_label(node)} (line {node.loop.line}) "
                f"requests {got_pages} pages, but Algorithm 1 sizes the "
                f"localities at {expected_by_strategy['active-page']} "
                "(active-page) or "
                f"{expected_by_strategy['conservative']} (conservative)",
                line=node.loop.line,
                payload={
                    "loop_id": loop_id,
                    "got": got_pages,
                    "expected": expected_by_strategy,
                },
            )


@rule(
    "CD103",
    "lock-balance",
    "error",
    "LOCK/UNLOCK must balance per nest and nest properly per Algorithm 2",
)
def check_lock_balance(context: LintContext) -> Iterator[Diagnostic]:
    tree = context.tree
    declared = set(context.symbols.arrays)
    # Per-nest ledger: nest root loop_id -> arrays locked inside it.
    locked_per_nest: Dict[int, Dict[str, int]] = {}
    for loop_id, lock in sorted(context.plan.locks_before.items()):
        node = tree.by_id.get(loop_id)
        if node is None:
            yield make_diagnostic(
                "CD103",
                "lock-balance",
                Severity.ERROR,
                f"LOCK is attached to loop id {loop_id}, which does not "
                "exist in the program",
                line=1,
                payload={"loop_id": loop_id},
            )
            continue
        for name in lock.arrays:
            if name not in declared:
                yield make_diagnostic(
                    "CD103",
                    "lock-balance",
                    Severity.ERROR,
                    f"LOCK before line {node.loop.line} names {name}, which "
                    "is not a declared array",
                    line=node.loop.line,
                    payload={"loop_id": loop_id, "array": name},
                )
        if node.parent is None:
            yield make_diagnostic(
                "CD103",
                "lock-balance",
                Severity.ERROR,
                f"LOCK precedes the outermost loop at line {node.loop.line}; "
                "Algorithm 2 only locks before *inner* loops (pages locked "
                "at the outermost level could never be re-referenced above "
                "it)",
                line=node.loop.line,
                payload={"loop_id": loop_id},
            )
            continue
        root = _nest_path(node)[0]
        ledger = locked_per_nest.setdefault(root.loop_id, {})
        for name in lock.arrays:
            ledger.setdefault(name, node.loop.line)
    unlock_roots = set()
    for loop_id, unlock in sorted(context.plan.unlocks_after.items()):
        node = tree.by_id.get(loop_id)
        if node is None:
            yield make_diagnostic(
                "CD103",
                "lock-balance",
                Severity.ERROR,
                f"UNLOCK is attached to loop id {loop_id}, which does not "
                "exist in the program",
                line=1,
                payload={"loop_id": loop_id},
            )
            continue
        if node.parent is not None:
            yield make_diagnostic(
                "CD103",
                "lock-balance",
                Severity.ERROR,
                f"UNLOCK follows the inner loop at line {node.loop.line}; "
                "Algorithm 2 releases pins only after the *outermost* loop "
                "of the nest",
                line=node.loop.line,
                payload={"loop_id": loop_id},
            )
            continue
        unlock_roots.add(loop_id)
        ledger = locked_per_nest.get(loop_id, {})
        extra = [a for a in unlock.arrays if a not in ledger]
        for name in extra:
            yield make_diagnostic(
                "CD103",
                "lock-balance",
                Severity.ERROR,
                f"UNLOCK after the nest at line {node.loop.line} names "
                f"{name}, which no LOCK in that nest pinned",
                line=node.loop.line,
                payload={"loop_id": loop_id, "array": name},
            )
        missing = [a for a in ledger if a not in set(unlock.arrays)]
        for name in missing:
            yield make_diagnostic(
                "CD103",
                "lock-balance",
                Severity.ERROR,
                f"array {name} is locked at line {ledger[name]} but the "
                f"UNLOCK after the nest at line {node.loop.line} never "
                "releases it (pin leak)",
                line=ledger[name],
                payload={"loop_id": loop_id, "array": name},
            )
    for root_id, ledger in sorted(locked_per_nest.items()):
        if root_id not in unlock_roots and ledger:
            root = tree.by_id[root_id]
            yield make_diagnostic(
                "CD103",
                "lock-balance",
                Severity.ERROR,
                f"the nest at line {root.loop.line} locks "
                f"{sorted(ledger)} but has no UNLOCK after its outermost "
                "loop — every pin leaks past the nest exit",
                line=root.loop.line,
                payload={"loop_id": root_id, "arrays": sorted(ledger)},
            )


@rule(
    "CD104",
    "lock-priority",
    "error",
    "LOCK PJ must equal the Procedure-1 PI of the enclosing loop",
)
def check_lock_priority(context: LintContext) -> Iterator[Diagnostic]:
    priority = context.priority
    for loop_id, lock in sorted(context.plan.locks_before.items()):
        node = context.tree.by_id.get(loop_id)
        if node is None or node.parent is None:
            continue  # CD103 reports the nesting problem
        expected = priority[node.parent.loop_id]
        if lock.priority_index != expected:
            yield make_diagnostic(
                "CD104",
                "lock-priority",
                Severity.ERROR,
                f"LOCK before line {node.loop.line} carries PJ="
                f"{lock.priority_index}, but the enclosing "
                f"{_loop_label(node.parent)} has PI={expected} — locked "
                "pages would age out of order under memory pressure",
                line=node.loop.line,
                payload={
                    "loop_id": loop_id,
                    "expected": expected,
                    "got": lock.priority_index,
                },
            )


# --------------------------------------------------------------------------
# CD2xx — wasteful directives (warning)
# --------------------------------------------------------------------------


@rule(
    "CD201",
    "dead-lock",
    "warning",
    "LOCK on an array the enclosing loop level never references",
)
def check_dead_lock(context: LintContext) -> Iterator[Diagnostic]:
    declared = set(context.symbols.arrays)
    for loop_id, lock in sorted(context.plan.locks_before.items()):
        node = context.tree.by_id.get(loop_id)
        if node is None or node.parent is None:
            continue
        referenced = {ref.name for ref in node.parent.direct_refs}
        for name in lock.arrays:
            if name in declared and name not in referenced:
                yield make_diagnostic(
                    "CD201",
                    "dead-lock",
                    Severity.WARNING,
                    f"LOCK before line {node.loop.line} pins {name}, but "
                    f"the enclosing {_loop_label(node.parent)} never "
                    "references it at its own level — the pin protects "
                    "pages that cannot be re-referenced there",
                    line=node.loop.line,
                    payload={"loop_id": loop_id, "array": name},
                )


@rule(
    "CD202",
    "dead-allocate-arm",
    "warning",
    "ALLOCATE arm dominated by an earlier equal-size request",
)
def check_dead_allocate_arm(context: LintContext) -> Iterator[Diagnostic]:
    for loop_id, directive in sorted(context.plan.allocates.items()):
        node = context.tree.by_id.get(loop_id)
        if node is None:
            continue
        for position in range(1, len(directive.requests)):
            arm = directive.requests[position]
            if arm.priority_index == 1:
                # The PI=1 fallback changes deny semantics (deny -> swap
                # out), so it is live even at an equal size.
                continue
            earlier = directive.requests[position - 1]
            if earlier.pages == arm.pages:
                yield make_diagnostic(
                    "CD202",
                    "dead-allocate-arm",
                    Severity.WARNING,
                    f"ALLOCATE before line {node.loop.line}: arm "
                    f"({arm.priority_index},{arm.pages}) is dead under the "
                    "default policy — the preceding arm "
                    f"({earlier.priority_index},{earlier.pages}) requests "
                    "the same size, so whenever this arm could be granted "
                    "the earlier one already was (a PI cap can revive it)",
                    line=node.loop.line,
                    payload={
                        "loop_id": loop_id,
                        "arm_index": position,
                        "pages": arm.pages,
                    },
                )


# --------------------------------------------------------------------------
# CD3xx — reference hygiene
# --------------------------------------------------------------------------


class _BoundsWalker:
    """Shared traversal for CD301/CD302/CD303.

    Walks the statement tree once, tracking attained loop-variable ranges
    (constant bounds only), guard variables, and zero-trip regions.
    """

    def __init__(self, context: LintContext):
        self.context = context
        self.env = _constant_env(context)
        self.symbols = context.symbols
        # Scalars assigned anywhere cannot serve as range variables even
        # if they shadow a DO index (pathological but representable).
        self.mutated = {
            stmt.target.name
            for stmt in context.program.walk_statements()
            if isinstance(stmt, ast.Assign)
            and isinstance(stmt.target, ast.Var)
        }
        self.nonaffine: List[Diagnostic] = []
        self.out_of_bounds: List[Diagnostic] = []
        self.zero_trip: List[Diagnostic] = []
        self._nonaffine_seen: Set[Tuple[int, str, str]] = set()
        self._oob_seen: Set[Tuple[int, str, int]] = set()
        # Affine-recovery pass: sites the FORAY-GEN rewrite can repair
        # get a fix-it attached to their CD301 diagnostic.
        from repro.staticcheck.recovery import recover_program

        self._recovered = recover_program(
            context.program, symbols=context.symbols
        ).site_map()

    def run(self) -> None:
        self._walk(self.context.program.body, ranges={}, guards=set())

    # -- traversal ---------------------------------------------------------

    def _walk(
        self,
        stmts: List[ast.Stmt],
        ranges: Optional[Dict[str, Tuple[int, int]]],
        guards: Set[str],
    ) -> None:
        """``ranges=None`` marks a region where execution itself is not
        provable (after a conditional EXIT): CD301 still classifies
        subscripts there, but CD302 stays silent."""
        for stmt in stmts:
            if isinstance(stmt, ast.DoLoop):
                # Bound expressions evaluate in the enclosing scope.
                for expr in (stmt.start, stmt.end, stmt.step):
                    if expr is not None:
                        self._check_expr(expr, ranges, guards)
                span = _loop_range(stmt, self.env)
                if span is not None and span[2] == 0:
                    self.zero_trip.append(
                        make_diagnostic(
                            "CD303",
                            "zero-trip-loop",
                            Severity.WARNING,
                            f"DO {stmt.var} at line {stmt.line} runs from "
                            f"{unparse_expr(stmt.start)} to "
                            f"{unparse_expr(stmt.end)}"
                            + (
                                f" step {unparse_expr(stmt.step)}"
                                if stmt.step is not None
                                else ""
                            )
                            + " — the body never executes",
                            line=stmt.line,
                            payload={"loop_id": stmt.loop_id},
                        )
                    )
                    # Dead code cannot fault; skip its reference checks.
                    continue
                inner: Optional[Dict[str, Tuple[int, int]]] = None
                if ranges is not None:
                    inner = dict(ranges)
                    if (
                        span is not None
                        and stmt.var not in self.mutated
                        # An EXIT can cut the loop short, so the final
                        # index values need not be attained at all.
                        and not _contains_exit(stmt.body)
                    ):
                        inner[stmt.var] = (
                            min(span[0], span[1]),
                            max(span[0], span[1]),
                        )
                    else:
                        inner.pop(stmt.var, None)
                self._walk(stmt.body, inner, guards)
            elif isinstance(stmt, ast.WhileLoop):
                self._check_expr(stmt.cond, ranges, guards)
                inner_guards = guards | expression_variables(stmt.cond)
                self._walk(stmt.body, ranges, inner_guards)
            elif isinstance(stmt, ast.IfBlock):
                branch_guards = set(guards)
                for cond, _body in stmt.branches:
                    if cond is not None:
                        self._check_expr(cond, ranges, guards)
                        branch_guards |= expression_variables(cond)
                for _cond, body in stmt.branches:
                    self._walk(body, ranges, branch_guards)
            elif isinstance(stmt, ast.LogicalIf):
                self._check_expr(stmt.cond, ranges, guards)
                self._walk(
                    [stmt.stmt],
                    ranges,
                    guards | expression_variables(stmt.cond),
                )
            else:
                for expr in ast.walk_expressions(stmt):
                    if isinstance(expr, ast.ArrayRef):
                        self._check_ref(expr, ranges, guards)
            if ranges is not None and _contains_exit([stmt]):
                # Everything after a conditional EXIT runs only when the
                # exit did not trigger — not provable statically.
                ranges = None

    def _check_expr(
        self,
        expr: ast.Expr,
        ranges: Optional[Dict[str, Tuple[int, int]]],
        guards: Set[str],
    ) -> None:
        for node in ast.walk_expressions(expr):
            if isinstance(node, ast.ArrayRef):
                self._check_ref(node, ranges, guards)

    # -- per-reference checks ---------------------------------------------

    def _check_ref(
        self,
        ref: ast.ArrayRef,
        ranges: Optional[Dict[str, Tuple[int, int]]],
        guards: Set[str],
    ) -> None:
        info = self.symbols.arrays.get(ref.name)
        if info is None or len(ref.indices) != len(info.dims):
            return  # the symbol table rejects these before lint runs
        for position, (subscript, dim) in enumerate(
            zip(ref.indices, info.dims)
        ):
            affine = _affine(subscript)
            if affine is None:
                self._report_nonaffine(ref, subscript, position)
                continue
            if ranges is None:
                continue  # execution of this region is not provable
            folded = _substitute_constants(affine[0], affine[1], self.env)
            if folded is None:
                continue
            coeffs, const = folded
            if any(v in guards for v in coeffs):
                continue  # a guard mentioning the variable may exclude
                # exactly the out-of-range iterations
            if any(v not in ranges for v in coeffs):
                continue  # no static range for some variable
            low = const
            high = const
            for v, c in coeffs.items():
                lo, hi = ranges[v]
                low += min(c * lo, c * hi)
                high += max(c * lo, c * hi)
            if low < 1 or high > dim:
                self._report_bounds(ref, subscript, position, dim, low, high)

    def _report_nonaffine(
        self, ref: ast.ArrayRef, subscript: ast.Expr, position: int
    ) -> None:
        text = normalize_expression(subscript)
        key = (ref.line, ref.name, text)
        if key in self._nonaffine_seen:
            return
        self._nonaffine_seen.add(key)
        site = self._recovered.get(key)
        message = (
            f"subscript {position + 1} of {ref.name} at line {ref.line} "
            f"({unparse_expr(subscript)}) is not affine in the loop "
            "variables; locality classification and bounds checking "
            "treat it conservatively"
        )
        payload = {"array": ref.name, "position": position + 1}
        fixits: List[FixIt] = []
        if site is not None:
            message += (
                f" — recoverable: equal to the affine form "
                f"{site.replacement} ({site.pattern} recovery)"
            )
            payload["recovered"] = True
            payload["replacement"] = site.replacement
            fixits.append(
                FixIt(
                    description=(
                        f"rewrite subscript {position + 1} of {ref.name} "
                        f"to the equivalent affine form "
                        f"({site.pattern} recovery)"
                    ),
                    span=SourceSpan(line=ref.line),
                    replacement=site.replacement,
                )
            )
        self.nonaffine.append(
            make_diagnostic(
                "CD301",
                "nonaffine-subscript",
                Severity.INFO,
                message,
                line=ref.line,
                payload=payload,
                fixits=fixits,
            )
        )

    def _report_bounds(
        self,
        ref: ast.ArrayRef,
        subscript: ast.Expr,
        position: int,
        dim: int,
        low: int,
        high: int,
    ) -> None:
        key = (ref.line, ref.name, position)
        if key in self._oob_seen:
            return
        self._oob_seen.add(key)
        self.out_of_bounds.append(
            make_diagnostic(
                "CD302",
                "subscript-bounds",
                Severity.ERROR,
                f"subscript {position + 1} of {ref.name} at line {ref.line} "
                f"({unparse_expr(subscript)}) spans {low}..{high} over the "
                f"attained loop ranges, outside the declared bound "
                f"1..{dim}",
                line=ref.line,
                payload={
                    "array": ref.name,
                    "position": position + 1,
                    "span": [low, high],
                    "bound": dim,
                },
            )
        )


_WALKER_CACHE_ATTR = "_staticcheck_bounds_walker"


def _bounds_walker(context: LintContext) -> _BoundsWalker:
    walker = getattr(context, _WALKER_CACHE_ATTR, None)
    if walker is None:
        walker = _BoundsWalker(context)
        walker.run()
        setattr(context, _WALKER_CACHE_ATTR, walker)
    return walker


@rule(
    "CD301",
    "nonaffine-subscript",
    "info",
    "Subscript not affine in the loop variables",
)
def check_nonaffine(context: LintContext) -> Iterator[Diagnostic]:
    yield from _bounds_walker(context).nonaffine


@rule(
    "CD302",
    "subscript-bounds",
    "error",
    "Affine subscript provably outside the declared array bounds",
)
def check_subscript_bounds(context: LintContext) -> Iterator[Diagnostic]:
    yield from _bounds_walker(context).out_of_bounds


@rule(
    "CD303",
    "zero-trip-loop",
    "warning",
    "Constant loop bounds that never execute the body",
)
def check_zero_trip(context: LintContext) -> Iterator[Diagnostic]:
    yield from _bounds_walker(context).zero_trip


@rule(
    "CD304",
    "row-major-traversal",
    "warning",
    "Loop walks a matrix row-wise under column-major storage",
)
def check_row_major_traversal(context: LintContext) -> Iterator[Diagnostic]:
    tree = context.tree
    ranks = {
        name: info.rank for name, info in context.symbols.arrays.items()
    }
    seen: Set[Tuple[int, str]] = set()
    for node in tree.nodes():
        for group in classify_references(tree, node, ranks):
            if group.driver is not node or group.rank != 2:
                continue
            if group.order is not ReferenceOrder.ROW_WISE:
                continue
            key = (node.loop_id, group.array)
            if key in seen:
                continue
            seen.add(key)
            yield _row_major_diagnostic(node, group)


def _loop_header(loop: ast.DoLoop) -> str:
    head = f"DO {loop.var} = {unparse_expr(loop.start)}, "
    head += unparse_expr(loop.end)
    if loop.step is not None:
        head += f", {unparse_expr(loop.step)}"
    return head


def _row_major_diagnostic(node: LoopNode, group) -> Diagnostic:
    # The loop that should be innermost is the one driving the row
    # subscript: interchanging it with this loop makes consecutive
    # iterations walk down a column (contiguous, column-major).
    partner = None
    for ancestor in node.ancestors():
        if ancestor.var and all(
            ancestor.var in expression_variables(ref.indices[0])
            for ref in group.refs
        ):
            partner = ancestor
            break
    message = (
        f"{_loop_label(node)} at line {node.loop.line} walks {group.array} "
        "row-wise: its variable appears only in the column subscript, so "
        "consecutive iterations stride across columns (one page per step "
        "under column-major storage)"
    )
    payload = {"loop_id": node.loop_id, "array": group.array}
    fixits: List[FixIt] = []
    if partner is not None:
        payload["interchange_with"] = partner.loop_id
        both_plain = (
            isinstance(node.loop, ast.DoLoop)
            and isinstance(partner.loop, ast.DoLoop)
            and node.loop.end_label is None
            and partner.loop.end_label is None
            and node.loop.label is None
            and partner.loop.label is None
        )
        description = (
            f"interchange with the enclosing DO {partner.var} (line "
            f"{partner.loop.line}) so {group.array} is walked column-wise"
        )
        replacement = None
        if both_plain and partner is node.parent:
            replacement = (
                f"{_loop_header(node.loop)}\n{_loop_header(partner.loop)}"
            )
        fixits.append(
            FixIt(
                description=description,
                span=SourceSpan(
                    line=partner.loop.line, end_line=node.loop.line
                ),
                replacement=replacement,
            )
        )
    return make_diagnostic(
        "CD304",
        "row-major-traversal",
        Severity.WARNING,
        message,
        line=node.loop.line,
        payload=payload,
        fixits=fixits,
    )


# --------------------------------------------------------------------------
# CD305/CD306 — closed-form working sets vs ALLOCATE sizing (warning)
# --------------------------------------------------------------------------

#: evaluation budget (array references) per closed-form footprint; nests
#: larger than this stay silent rather than slow the lint run down
_FOOTPRINT_BUDGET = 50_000


def _nest_footprint(
    stmts: List[ast.Stmt],
    values: Dict[str, int],
    env: Dict[str, int],
    arrays,
    epp: int,
    state: List[int],
) -> Optional[Set[Tuple[str, int]]]:
    """The exact set of ``(array, page)`` pairs touched by ``stmts`` with
    the outer loop variables pinned to ``values`` — derived by closed-form
    subscript evaluation (no interpretation, no values, no trace), or
    ``None`` when some bound/subscript is not statically evaluable or the
    budget runs out.  IF branches contribute their union (may-touch)."""
    pages: Set[Tuple[str, int]] = set()
    for stmt in stmts:
        if isinstance(stmt, ast.DoLoop):
            scope = {**env, **values}
            try:
                start = eval_const_expr(stmt.start, scope)
                end = eval_const_expr(stmt.end, scope)
                step = (
                    eval_const_expr(stmt.step, scope)
                    if stmt.step is not None
                    else 1
                )
            except SemanticError:
                return None
            if (
                not all(isinstance(v, int) for v in (start, end, step))
                or step == 0
            ):
                return None
            trips = max(0, (end - start) // step + 1)
            inner_values = dict(values)
            for trip in range(trips):
                inner_values[stmt.var] = start + trip * step
                sub = _nest_footprint(
                    stmt.body, inner_values, env, arrays, epp, state
                )
                if sub is None:
                    return None
                pages |= sub
        elif isinstance(stmt, (ast.WhileLoop, ast.ExitLoop)):
            return None  # trip counts are not closed-form
        elif isinstance(stmt, ast.IfBlock):
            for cond, body in stmt.branches:
                if cond is not None and not _collect_refs(
                    cond, values, env, arrays, epp, state, pages
                ):
                    return None
                sub = _nest_footprint(
                    body, values, env, arrays, epp, state
                )
                if sub is None:
                    return None
                pages |= sub
        elif isinstance(stmt, ast.LogicalIf):
            if not _collect_refs(
                stmt.cond, values, env, arrays, epp, state, pages
            ):
                return None
            sub = _nest_footprint(
                [stmt.stmt], values, env, arrays, epp, state
            )
            if sub is None:
                return None
            pages |= sub
        else:
            for expr in ast.walk_expressions(stmt):
                if isinstance(expr, ast.ArrayRef) and not _collect_refs(
                    expr, values, env, arrays, epp, state, pages
                ):
                    return None
    return pages


def _collect_refs(
    expr: ast.Expr,
    values: Dict[str, int],
    env: Dict[str, int],
    arrays,
    epp: int,
    state: List[int],
    pages: Set[Tuple[str, int]],
) -> bool:
    """Add the pages of every array reference in ``expr``; False when a
    subscript is not statically evaluable or the budget is exhausted."""
    scope = {**env, **values}
    for node in ast.walk_expressions(expr):
        if not isinstance(node, ast.ArrayRef):
            continue
        state[0] -= 1
        if state[0] < 0:
            return False
        info = arrays.get(node.name)
        if info is None or len(node.indices) != len(info.dims):
            return False
        try:
            subscripts = [
                eval_const_expr(ix, scope) for ix in node.indices
            ]
        except SemanticError:
            return False
        if not all(isinstance(s, int) for s in subscripts):
            return False
        linear = subscripts[0] - 1
        if len(subscripts) == 2:
            linear += info.rows * (subscripts[1] - 1)
        pages.add((node.name, linear // epp))
    return True


def _has_invariant_ref(loop: ast.DoLoop) -> bool:
    """Some array reference in the body avoids the loop index entirely —
    its pages are re-touched identically on every iteration."""
    for stmt in ast._walk(loop.body):
        for expr in ast.walk_expressions(stmt):
            if isinstance(expr, ast.ArrayRef) and all(
                loop.var not in expression_variables(ix)
                for ix in expr.indices
            ):
                return True
    return False


def _allocate_lines(context: LintContext) -> Dict[int, int]:
    """Source line of each ALLOCATE statement, for instrumented inputs
    (self-instrumented plans fall back to the loop header line)."""
    return {
        stmt.loop_id: stmt.line
        for stmt in context.program.walk_statements()
        if isinstance(stmt, ast.AllocateStmt)
        and getattr(stmt, "loop_id", None) is not None
    }


@rule(
    "CD305",
    "predicted-thrash",
    "warning",
    "Closed-form reuse distance exceeds every ALLOCATE arm",
)
def check_predicted_thrash(context: LintContext) -> Iterator[Diagnostic]:
    """One iteration of the governed loop touches more pages than even
    the largest ALLOCATE arm grants, while some references are loop
    invariant: those pages are always evicted before their reuse (the
    minimum reuse distance exceeds every arm), so every revisit faults."""
    env = _constant_env(context)
    epp = PageConfig().elements_per_page
    arrays = context.symbols.arrays
    lines = _allocate_lines(context)
    for loop_id, directive in sorted(context.plan.allocates.items()):
        node = context.tree.by_id.get(loop_id)
        if node is None or node.is_while:
            continue
        loop = node.loop
        span = _loop_range(loop, env)
        if span is None or span[2] < 2:
            continue  # no repetition, no cross-iteration reuse
        if not _has_invariant_ref(loop):
            continue
        state = [_FOOTPRINT_BUDGET]
        footprint = _nest_footprint(
            loop.body, {loop.var: span[0]}, env, arrays, epp, state
        )
        if footprint is None:
            continue
        distance = len(footprint)
        largest = max(r.pages for r in directive.requests)
        if distance <= largest:
            continue
        yield make_diagnostic(
            "CD305",
            "predicted-thrash",
            Severity.WARNING,
            f"one iteration of DO {loop.var} at line {loop.line} touches "
            f"{distance} pages but the largest ALLOCATE arm grants only "
            f"{largest}: the loop-invariant pages re-referenced each "
            f"iteration (minimum reuse distance {distance}) are evicted "
            "before every reuse — statically predicted thrash",
            line=lines.get(loop_id, loop.line),
            payload={
                "loop_id": loop_id,
                "reuse_distance": distance,
                "largest_arm": largest,
            },
        )


@rule(
    "CD306",
    "undersized-allocate",
    "warning",
    "ALLOCATE sized below the nest's closed-form working set",
)
def check_undersized_allocate(
    context: LintContext,
) -> Iterator[Diagnostic]:
    """Even the largest ALLOCATE arm is smaller than the frames one pass
    of the nest's innermost loop needs to hit its own *within-pass*
    reuses (the maximum LRU stack position among reused pages) — the
    directive under-provisions the locality it is supposed to cover.
    A pure streaming pass (no within-pass reuse) never fires: its cold
    faults are unavoidable at any size."""
    env = _constant_env(context)
    epp = PageConfig().elements_per_page
    arrays = context.symbols.arrays
    lines = _allocate_lines(context)
    for loop_id, directive in sorted(context.plan.allocates.items()):
        node = context.tree.by_id.get(loop_id)
        if node is None or node.is_while:
            continue
        worst: Optional[Tuple[int, LoopNode]] = None
        for leaf in _innermost_leaves(node):
            frames = _innermost_pass_frames(leaf, env, arrays, epp)
            if frames is None:
                continue
            if worst is None or frames > worst[0]:
                worst = (frames, leaf)
        if worst is None or worst[0] == 0:
            continue
        working_set, leaf = worst
        largest = max(r.pages for r in directive.requests)
        if working_set <= largest:
            continue
        bumped = AllocateDirective(
            loop_id=directive.loop_id,
            requests=tuple(
                AllocateRequest(
                    priority_index=r.priority_index,
                    pages=max(r.pages, working_set),
                )
                for r in directive.requests
            ),
        )
        leaf_loop = leaf.loop
        fixits = [
            FixIt(
                description=(
                    f"size every arm to the {working_set}-frame closed-"
                    "form working set of the innermost pass"
                ),
                span=SourceSpan(line=lines.get(loop_id, node.loop.line)),
                replacement=bumped.render(),
            ),
            FixIt(
                description=(
                    f"or restructure the nest (tile or interchange DO "
                    f"{leaf.var} at line {leaf_loop.line}) so one "
                    f"innermost pass reuses pages within {largest} frames"
                ),
                span=SourceSpan(line=leaf_loop.line),
            ),
        ]
        yield make_diagnostic(
            "CD306",
            "undersized-allocate",
            Severity.WARNING,
            f"ALLOCATE for DO {node.var} at line {node.loop.line} grants "
            f"at most {largest} pages but one pass of the innermost DO "
            f"{leaf.var} (line {leaf_loop.line}) needs {working_set} "
            "frames to hit its own within-pass page reuses — the "
            "directive is sized below the nest's closed-form working set",
            line=lines.get(loop_id, node.loop.line),
            payload={
                "loop_id": loop_id,
                "working_set": working_set,
                "largest_arm": largest,
                "innermost_loop_id": leaf.loop_id,
            },
            fixits=fixits,
        )


def _innermost_leaves(node: LoopNode) -> Iterator[LoopNode]:
    if node.is_innermost:
        yield node
        return
    for child in node.children:
        yield from _innermost_leaves(child)


def _innermost_pass_frames(
    leaf: LoopNode, env: Dict[str, int], arrays, epp: int
) -> Optional[int]:
    """LRU frames one full pass of ``leaf`` needs to hit every one of
    its *within-pass* page reuses (the maximum stack position among
    reused pages), with every enclosing loop variable pinned to its
    first value.  0 for a pure streaming pass; ``None`` if not static."""
    if leaf.is_while:
        return None
    values: Dict[str, int] = {}
    # Outermost first: inner bounds may reference outer indices.
    for ancestor in reversed(list(leaf.ancestors())):
        if ancestor.is_while:
            return None
        span = _loop_range(ancestor.loop, {**env, **values})
        if span is None:
            return None
        values[ancestor.var] = span[0]
    state = [_FOOTPRINT_BUDGET]
    sequence: List[Tuple[str, int]] = []
    if not _page_sequence(
        [leaf.loop], values, env, arrays, epp, state, sequence
    ):
        return None
    stack: List[Tuple[str, int]] = []
    frames = 0
    for page in sequence:
        try:
            position = stack.index(page) + 1
        except ValueError:
            position = 0  # cold touch
        if position:
            stack.remove(page)
            frames = max(frames, position)
        stack.insert(0, page)
    return frames


def _page_sequence(
    stmts: List[ast.Stmt],
    values: Dict[str, int],
    env: Dict[str, int],
    arrays,
    epp: int,
    state: List[int],
    out: List[Tuple[str, int]],
) -> bool:
    """Append the ordered ``(array, page)`` touches of ``stmts`` (source
    order within a statement; both IF branches contribute); False when
    not statically enumerable."""
    for stmt in stmts:
        if isinstance(stmt, ast.DoLoop):
            scope = {**env, **values}
            try:
                start = eval_const_expr(stmt.start, scope)
                end = eval_const_expr(stmt.end, scope)
                step = (
                    eval_const_expr(stmt.step, scope)
                    if stmt.step is not None
                    else 1
                )
            except SemanticError:
                return False
            if (
                not all(isinstance(v, int) for v in (start, end, step))
                or step == 0
            ):
                return False
            trips = max(0, (end - start) // step + 1)
            inner_values = dict(values)
            for trip in range(trips):
                inner_values[stmt.var] = start + trip * step
                if not _page_sequence(
                    stmt.body, inner_values, env, arrays, epp, state, out
                ):
                    return False
        elif isinstance(stmt, (ast.WhileLoop, ast.ExitLoop)):
            return False
        elif isinstance(stmt, ast.IfBlock):
            for cond, body in stmt.branches:
                if cond is not None and not _append_refs(
                    cond, values, env, arrays, epp, state, out
                ):
                    return False
                if not _page_sequence(
                    body, values, env, arrays, epp, state, out
                ):
                    return False
        elif isinstance(stmt, ast.LogicalIf):
            if not _append_refs(
                stmt.cond, values, env, arrays, epp, state, out
            ):
                return False
            if not _page_sequence(
                [stmt.stmt], values, env, arrays, epp, state, out
            ):
                return False
        else:
            for expr in ast.walk_expressions(stmt):
                if isinstance(expr, ast.ArrayRef) and not _append_refs(
                    expr, values, env, arrays, epp, state, out
                ):
                    return False
    return True


def _append_refs(
    expr: ast.Expr,
    values: Dict[str, int],
    env: Dict[str, int],
    arrays,
    epp: int,
    state: List[int],
    out: List[Tuple[str, int]],
) -> bool:
    scope = {**env, **values}
    for node in ast.walk_expressions(expr):
        if not isinstance(node, ast.ArrayRef):
            continue
        state[0] -= 1
        if state[0] < 0:
            return False
        info = arrays.get(node.name)
        if info is None or len(node.indices) != len(info.dims):
            return False
        try:
            subscripts = [
                eval_const_expr(ix, scope) for ix in node.indices
            ]
        except SemanticError:
            return False
        if not all(isinstance(s, int) for s in subscripts):
            return False
        linear = subscripts[0] - 1
        if len(subscripts) == 2:
            linear += info.rows * (subscripts[1] - 1)
        out.append((node.name, linear // epp))
    return True
