"""FORAY-GEN-style affine recovery for non-affine subscripts.

The CD301 rule flags subscripts the affine classifier cannot express as
``sum(coeff * var) + const``.  Many of those sites are *recoverably*
affine: the obstruction is an idiom, not genuine irregularity.  This
pass rewrites two such idioms into closed affine form so the static
locality engine (:mod:`repro.analysis.staticloc`) and the bounds checker
can reason about them:

``constant-fold``
    Subscripts that become affine once run-constant scalars are
    substituted: PARAMETER names and straight-prefix scalars folded in,
    then the expression re-classified.  Covers ``SRC(NX/2, NY/2)``
    (division of constants), induction products of loop invariants
    (``A(I*N)`` with N a parameter), and linearized 2-D index
    arithmetic (``A((J-1)*N + I)``).

``induction-pointer``
    Strength-reduced pointers: a scalar initialized to a run constant
    immediately before a DO loop and bumped by a constant exactly once
    per iteration.  Its value is an affine function of the loop index,
    so subscript *reads* are rewritten to that closed form (the scalar's
    own updates are kept — the rewrite never changes program values,
    only how subscripts are spelled).

Soundness contract: ``recover_program`` returns a deep copy — the input
AST is never mutated — and the copy is reference-trace-equivalent to the
original by construction (every rewritten subscript evaluates to the
same integer at every execution).  The oracle battery re-proves this per
program by compiling both traces and comparing them.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.reference_order import normalize_expression
from repro.frontend import ast
from repro.frontend.errors import SemanticError
from repro.frontend.symbols import SymbolTable, eval_const_expr
from repro.frontend.unparse import unparse_expr


@dataclass(frozen=True)
class RecoveredSite:
    """One subscript rewritten into affine form."""

    array: str
    line: int
    position: int  # 1-based subscript position
    original: str  # source text of the non-affine subscript
    replacement: str  # source text of the affine rewrite
    pattern: str  # "constant-fold" | "induction-pointer"

    @property
    def key(self) -> Tuple[int, str, str]:
        """Matches the CD301 dedup key (line, array, normalized text)."""
        return (self.line, self.array, self.original)


@dataclass
class RecoveryResult:
    """The rewritten program plus every recovered site."""

    program: ast.Program
    sites: List[RecoveredSite] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.sites)

    def site_map(self) -> Dict[Tuple[int, str, str], RecoveredSite]:
        return {site.key: site for site in self.sites}


# --------------------------------------------------------------------------
# Affine expression (re)construction
# --------------------------------------------------------------------------


def _affine_ast(coeffs: Dict[str, int], const: int, line: int) -> ast.Expr:
    """Canonical AST for ``sum(coeff * var) + const`` (vars sorted)."""
    expr: Optional[ast.Expr] = None
    for name in sorted(coeffs):
        c = coeffs[name]
        if c == 0:
            continue
        var = ast.Var(name=name, line=line)
        term: ast.Expr
        if abs(c) == 1:
            term = var
        else:
            term = ast.BinOp(
                op="*",
                left=ast.Num(value=abs(c), line=line),
                right=var,
                line=line,
            )
        if expr is None:
            expr = (
                term
                if c > 0
                else ast.UnaryOp(op="-", operand=term, line=line)
            )
        else:
            expr = ast.BinOp(
                op="+" if c > 0 else "-", left=expr, right=term, line=line
            )
    if expr is None:
        return ast.Num(value=const, line=line)
    if const != 0:
        expr = ast.BinOp(
            op="+" if const > 0 else "-",
            left=expr,
            right=ast.Num(value=abs(const), line=line),
            line=line,
        )
    return expr


def _substitute_env(expr: ast.Expr, env: Dict[str, int]) -> ast.Expr:
    """A copy of ``expr`` with every environment scalar replaced by its
    literal value (array names are untouched — only ``Var`` nodes)."""
    if isinstance(expr, ast.Var) and expr.name in env:
        return ast.Num(value=env[expr.name], line=expr.line)
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(
            op=expr.op,
            left=_substitute_env(expr.left, env),
            right=_substitute_env(expr.right, env),
            line=expr.line,
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(
            op=expr.op,
            operand=_substitute_env(expr.operand, env),
            line=expr.line,
        )
    return expr


# --------------------------------------------------------------------------
# Pattern: constant-fold
# --------------------------------------------------------------------------


def _recover_constant(
    subscript: ast.Expr, env: Dict[str, int]
) -> Optional[ast.Expr]:
    """Affine rewrite via environment substitution, or ``None``."""
    from repro.staticcheck.rules import _affine

    if _affine(subscript) is not None:
        return None  # nothing to recover
    substituted = _substitute_env(subscript, env)
    affine = _affine(substituted)
    if affine is None:
        return None
    coeffs, const = affine
    return _affine_ast(coeffs, const, subscript.line)


def _fold_constant_sites(
    program: ast.Program, env: Dict[str, int], sites: List[RecoveredSite]
) -> None:
    seen = set()
    for stmt in program.walk_statements():
        for expr in ast.walk_expressions(stmt):
            if not isinstance(expr, ast.ArrayRef):
                continue
            for position, subscript in enumerate(expr.indices):
                rewritten = _recover_constant(subscript, env)
                if rewritten is None:
                    continue
                key = (
                    expr.line,
                    expr.name,
                    normalize_expression(subscript),
                )
                expr.indices[position] = rewritten
                if key in seen:
                    continue
                seen.add(key)
                sites.append(
                    RecoveredSite(
                        array=expr.name,
                        line=expr.line,
                        position=position + 1,
                        original=key[2],
                        replacement=unparse_expr(rewritten),
                        pattern="constant-fold",
                    )
                )


# --------------------------------------------------------------------------
# Pattern: induction-pointer (strength-reduced subscripts)
# --------------------------------------------------------------------------


def _const_int(expr: ast.Expr, env: Dict[str, int]) -> Optional[int]:
    try:
        value = eval_const_expr(expr, env)
    except SemanticError:
        return None
    return value if isinstance(value, int) else None


def _pointer_increment(
    stmt: ast.Stmt, name: str, env: Dict[str, int]
) -> Optional[int]:
    """Signed step of ``name = name ± c`` / ``name = c + name``."""
    if not (
        isinstance(stmt, ast.Assign)
        and isinstance(stmt.target, ast.Var)
        and stmt.target.name == name
        and isinstance(stmt.expr, ast.BinOp)
        and stmt.expr.op in ("+", "-")
    ):
        return None
    left, right = stmt.expr.left, stmt.expr.right
    if isinstance(left, ast.Var) and left.name == name:
        c = _const_int(right, env)
        if c is None:
            return None
        return c if stmt.expr.op == "+" else -c
    if (
        stmt.expr.op == "+"
        and isinstance(right, ast.Var)
        and right.name == name
    ):
        return _const_int(left, env)
    return None


def _rewrite_pointer_reads(
    stmt: ast.Stmt,
    name: str,
    closed: Tuple[Dict[str, int], int],
    sites: List[RecoveredSite],
    seen: set,
) -> None:
    """Replace subscript reads of ``name`` under ``stmt`` with its affine
    closed form, recursing through nested statements."""
    from repro.staticcheck.rules import _affine

    for node in _statements_under(stmt):
        for expr in ast.walk_expressions(node):
            if not isinstance(expr, ast.ArrayRef):
                continue
            for position, subscript in enumerate(expr.indices):
                if not _mentions_var(subscript, name):
                    continue
                replacement_sub = _substitute_var(
                    subscript, name, closed, subscript.line
                )
                affine = _affine(replacement_sub)
                if affine is None:
                    continue  # still irregular — leave it alone
                rewritten = _affine_ast(*affine, subscript.line)
                key = (
                    expr.line,
                    expr.name,
                    normalize_expression(subscript),
                )
                expr.indices[position] = rewritten
                if key in seen:
                    continue
                seen.add(key)
                sites.append(
                    RecoveredSite(
                        array=expr.name,
                        line=expr.line,
                        position=position + 1,
                        original=key[2],
                        replacement=unparse_expr(rewritten),
                        pattern="induction-pointer",
                    )
                )


def _statements_under(stmt: ast.Stmt):
    yield stmt
    if isinstance(stmt, (ast.DoLoop, ast.WhileLoop)):
        for child in stmt.body:
            yield from _statements_under(child)
    elif isinstance(stmt, ast.IfBlock):
        for _cond, body in stmt.branches:
            for child in body:
                yield from _statements_under(child)
    elif isinstance(stmt, ast.LogicalIf):
        yield from _statements_under(stmt.stmt)


def _mentions_var(expr: ast.Expr, name: str) -> bool:
    return any(
        isinstance(node, ast.Var) and node.name == name
        for node in ast.walk_expressions(expr)
    )


def _substitute_var(
    expr: ast.Expr,
    name: str,
    closed: Tuple[Dict[str, int], int],
    line: int,
) -> ast.Expr:
    if isinstance(expr, ast.Var) and expr.name == name:
        return _affine_ast(closed[0], closed[1], line)
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(
            op=expr.op,
            left=_substitute_var(expr.left, name, closed, line),
            right=_substitute_var(expr.right, name, closed, line),
            line=expr.line,
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(
            op=expr.op,
            operand=_substitute_var(expr.operand, name, closed, line),
            line=expr.line,
        )
    return expr


def _recover_pointer_loop(
    loop: ast.DoLoop,
    local_consts: Dict[str, int],
    env: Dict[str, int],
    loop_vars: set,
    assign_counts: Dict[str, int],
    sites: List[RecoveredSite],
) -> None:
    from repro.staticcheck.rules import _contains_exit

    start = _const_int(loop.start, env)
    step = _const_int(loop.step, env) if loop.step is not None else 1
    if start is None or step is None or step == 0:
        return
    if _contains_exit(loop.body):
        return  # an EXIT breaks the one-bump-per-iteration invariant
    for index, stmt in enumerate(loop.body):
        if not (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.target, ast.Var)
        ):
            continue
        name = stmt.target.name
        if (
            name == loop.var
            or name in loop_vars
            or name not in local_consts
            # Exactly two writes program-wide: the init we tracked plus
            # this bump.  Any other writer voids the closed form.
            or assign_counts.get(name, 0) != 2
        ):
            continue
        bump = _pointer_increment(stmt, name, env)
        if bump is None or bump % step != 0:
            continue
        coeff = bump // step
        base = local_consts[name]
        # Value before the bump in the iteration where the index is I:
        #   base + coeff*(I - start); after the bump: one more ``bump``.
        before = ({loop.var: coeff}, base - coeff * start)
        after = ({loop.var: coeff}, base + bump - coeff * start)
        seen: set = set()
        for j, body_stmt in enumerate(loop.body):
            if j == index:
                continue
            closed = before if j < index else after
            _rewrite_pointer_reads(body_stmt, name, closed, sites, seen)
        return  # one pointer per loop keeps positions unambiguous


def _recover_pointer_sites(
    program: ast.Program, env: Dict[str, int], sites: List[RecoveredSite]
) -> None:
    assign_counts: Dict[str, int] = {}
    loop_vars: set = set()
    for stmt in program.walk_statements():
        if isinstance(stmt, ast.DoLoop):
            loop_vars.add(stmt.var)
        if isinstance(stmt, ast.Assign) and isinstance(
            stmt.target, ast.Var
        ):
            name = stmt.target.name
            assign_counts[name] = assign_counts.get(name, 0) + 1

    def scan(stmts: List[ast.Stmt]) -> None:
        local_consts: Dict[str, int] = {}
        for stmt in stmts:
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.target, ast.Var
            ):
                value = _const_int(stmt.expr, env)
                if value is None:
                    local_consts.pop(stmt.target.name, None)
                else:
                    local_consts[stmt.target.name] = value
            elif isinstance(stmt, ast.DoLoop):
                _recover_pointer_loop(
                    stmt,
                    local_consts,
                    env,
                    loop_vars,
                    assign_counts,
                    sites,
                )
                scan(stmt.body)
            elif isinstance(stmt, ast.WhileLoop):
                scan(stmt.body)
            elif isinstance(stmt, ast.IfBlock):
                for _cond, body in stmt.branches:
                    scan(body)
            elif isinstance(stmt, ast.LogicalIf):
                scan([stmt.stmt])

    scan(program.body)


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------


def recover_program(
    program: ast.Program, symbols: Optional[SymbolTable] = None
) -> RecoveryResult:
    """Rewrite every recoverable subscript of ``program`` (on a copy).

    Returns the rewritten program and the list of recovered sites; when
    nothing is recoverable the copy is structurally identical to the
    input.  Induction pointers run first (their closed forms may expose
    further constant folding), then constant substitution.
    """
    from repro.staticcheck.rules import constant_env

    if symbols is None:
        symbols = SymbolTable.from_program(program)
    env = constant_env(program, symbols)
    rewritten = copy.deepcopy(program)
    sites: List[RecoveredSite] = []
    _recover_pointer_sites(rewritten, env, sites)
    _fold_constant_sites(rewritten, env, sites)
    return RecoveryResult(program=rewritten, sites=sites)
