"""Text and JSON renderers for lint results.

Text output is one finding per line, ``grep``-able and stable:

    prog.f:12: error CD103 [lock-balance]: array A is locked at line 12 …
      fix: interchange with the enclosing DO J (line 11) …
           | DO I = 1, N

JSON output is a single document with the findings, a severity summary,
and the rule catalog version — the contract the golden-file tests pin
down.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.staticcheck.diagnostics import Diagnostic, Severity

#: bump when the JSON shape (not the findings) changes incompatibly
JSON_FORMAT_VERSION = 1


def summarize(diagnostics: List[Diagnostic]) -> Dict[str, int]:
    counts = {"error": 0, "warning": 0, "info": 0}
    for d in diagnostics:
        counts[str(d.severity)] += 1
    return counts


def render_text(
    diagnostics: List[Diagnostic], source_name: str = "<program>"
) -> str:
    """Human-readable report, one line per finding plus fix-it detail."""
    lines: List[str] = []
    for d in diagnostics:
        lines.append(
            f"{source_name}:{d.span}: {d.severity} {d.rule} "
            f"[{d.name}]: {d.message}"
        )
        for fixit in d.fixits:
            lines.append(f"  fix: {fixit.description}")
            if fixit.replacement is not None:
                for repl_line in fixit.replacement.splitlines():
                    lines.append(f"       | {repl_line}")
    counts = summarize(diagnostics)
    lines.append(
        f"{source_name}: {counts['error']} error(s), "
        f"{counts['warning']} warning(s), {counts['info']} info"
    )
    return "\n".join(lines) + "\n"


def render_json(
    diagnostics: List[Diagnostic],
    source_name: str = "<program>",
    indent: Optional[int] = 2,
) -> str:
    """Machine-readable report (stable key order, trailing newline)."""
    document = {
        "format_version": JSON_FORMAT_VERSION,
        "source": source_name,
        "summary": summarize(diagnostics),
        "diagnostics": [d.to_json() for d in diagnostics],
    }
    return json.dumps(document, indent=indent, sort_keys=False) + "\n"


def has_errors(diagnostics: List[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diagnostics)
