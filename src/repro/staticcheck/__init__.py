"""Static checker for paper invariants and locality hygiene.

The paper's premise is that memory behavior is decidable at compile
time.  This package takes that claim seriously: instead of *replaying*
traces (the oracle's job), it proves the invariants directly on the AST
and the :class:`~repro.directives.model.InstrumentationPlan` —
Procedure-1 priority monotonicity, Algorithm-1 argument-stack
discipline, Algorithm-2 lock balance and nesting, plus hygiene rules for
dead directives, subscript safety, and column-major traversal order.

Entry points:

* :func:`lint_program` / :func:`lint_source` — run the rule suite;
* :func:`render_text` / :func:`render_json` — render the findings;
* :func:`all_rules` — the rule catalog (docs and tests iterate it).
"""

from repro.staticcheck.diagnostics import (
    Diagnostic,
    FixIt,
    Severity,
    SourceSpan,
    error_count,
    worst_severity,
)
from repro.staticcheck.registry import (
    LintContext,
    RuleInfo,
    all_rules,
    get_rule,
    lint_program,
    lint_source,
    run_rules,
)
from repro.staticcheck.render import (
    has_errors,
    render_json,
    render_text,
    summarize,
)

__all__ = [
    "Diagnostic",
    "FixIt",
    "LintContext",
    "RuleInfo",
    "Severity",
    "SourceSpan",
    "all_rules",
    "error_count",
    "get_rule",
    "has_errors",
    "lint_program",
    "lint_source",
    "render_json",
    "render_text",
    "run_rules",
    "summarize",
    "worst_severity",
]
