"""Rule registry and lint driver.

A *rule* is a function ``(LintContext) -> Iterable[Diagnostic]``
registered under a stable id (``CD101``, …) with the :func:`rule`
decorator.  :func:`run_rules` executes a rule subset over one
:class:`LintContext`; :func:`lint_program` is the one-call entry point
the CLI, the oracle, and the tests use.

The context carries the program, the directive plan under scrutiny, and
lazily-built analysis artifacts (symbol table, loop tree, Procedure-1
priority map, locality analysis under both sizing strategies) so rules
share work instead of re-deriving it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.analysis.locality import (
    LocalityAnalysis,
    SizingStrategy,
    analyze_program,
)
from repro.analysis.looptree import LoopTree
from repro.analysis.priority import assign_priority_indexes
from repro.directives.model import InstrumentationPlan
from repro.frontend import ast
from repro.frontend.symbols import SymbolTable
from repro.staticcheck.diagnostics import Diagnostic

RuleFunc = Callable[["LintContext"], Iterable[Diagnostic]]


@dataclass(frozen=True)
class RuleInfo:
    """Registry entry: identity plus the rule's own documentation."""

    rule_id: str
    name: str
    severity: str  # default severity, for the catalog
    summary: str
    func: RuleFunc


_REGISTRY: Dict[str, RuleInfo] = {}


def rule(rule_id: str, name: str, severity: str, summary: str):
    """Register a rule function under ``rule_id``."""

    def register(func: RuleFunc) -> RuleFunc:
        if rule_id in _REGISTRY:  # pragma: no cover - programming error
            raise ValueError(f"duplicate rule id {rule_id}")
        _REGISTRY[rule_id] = RuleInfo(
            rule_id=rule_id,
            name=name,
            severity=severity,
            summary=summary,
            func=func,
        )
        return func

    return register


def all_rules() -> List[RuleInfo]:
    """Every registered rule, ordered by id."""
    _ensure_rules_loaded()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> RuleInfo:
    _ensure_rules_loaded()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule id {rule_id!r}") from None


def _ensure_rules_loaded() -> None:
    # The rule module registers itself on import; importing it here keeps
    # registry.py importable without a cycle at module load time.
    from repro.staticcheck import rules  # noqa: F401


@dataclass
class LintContext:
    """Everything a rule may consult, built once per lint run."""

    program: ast.Program
    plan: InstrumentationPlan
    #: True when the plan was derived by the checker itself (self-check
    #: mode on an un-instrumented program) rather than read from input
    self_instrumented: bool = False
    _symbols: Optional[SymbolTable] = field(default=None, repr=False)
    _analyses: Dict[SizingStrategy, LocalityAnalysis] = field(
        default_factory=dict, repr=False
    )

    @property
    def symbols(self) -> SymbolTable:
        if self._symbols is None:
            self._symbols = SymbolTable.from_program(self.program)
        return self._symbols

    def analysis(
        self, strategy: SizingStrategy = SizingStrategy.ACTIVE_PAGE
    ) -> LocalityAnalysis:
        cached = self._analyses.get(strategy)
        if cached is None:
            cached = analyze_program(
                self.program, symbols=self.symbols, strategy=strategy
            )
            self._analyses[strategy] = cached
        return cached

    @property
    def tree(self) -> LoopTree:
        return self.analysis().tree

    @property
    def priority(self) -> Dict[int, int]:
        """Procedure-1 priority indexes, recomputed independently of the
        plan under scrutiny."""
        return assign_priority_indexes(self.tree)


def run_rules(
    context: LintContext,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Run the selected rules (default: all) and sort the findings."""
    _ensure_rules_loaded()
    selected = (
        all_rules()
        if rule_ids is None
        else [get_rule(rule_id) for rule_id in rule_ids]
    )
    out: List[Diagnostic] = []
    for info in selected:
        out.extend(info.func(context))
    out.sort(key=lambda d: d.sort_key())
    return out


def lint_program(
    program: ast.Program,
    plan: Optional[InstrumentationPlan] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Lint one program against its directive plan.

    With ``plan=None`` the checker instruments the program itself
    (Algorithms 1 and 2 with default sizing) and verifies its own output
    — the rules recompute every invariant independently of the insertion
    code, so self-check mode is a genuine cross-validation, not a
    tautology.
    """
    from repro.directives.instrument import instrument_program

    self_instrumented = plan is None
    context = LintContext(
        program=program,
        plan=plan if plan is not None else InstrumentationPlan(),
        self_instrumented=self_instrumented,
    )
    if self_instrumented:
        context.plan = instrument_program(
            program, analysis=context.analysis(), with_locks=True
        )
    return run_rules(context, rule_ids=rule_ids)


def lint_source(
    source: str, rule_ids: Optional[Sequence[str]] = None
) -> List[Diagnostic]:
    """Lint source text.

    Instrumented sources (containing ALLOCATE/LOCK/UNLOCK lines) are
    checked against the plan they carry; plain sources go through
    self-check mode.
    """
    from repro.directives.parse import parse_instrumented

    program, plan = parse_instrumented(source)
    if plan.directive_count == 0:
        return lint_program(program, plan=None, rule_ids=rule_ids)
    return lint_program(program, plan=plan, rule_ids=rule_ids)
