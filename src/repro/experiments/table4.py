"""Table 4: "The Cost of Generating The Same Number of Page Faults as CD
by LRU and WS" — %MEM and %ST at matched fault counts.

For each row, find the smallest LRU allocation / smallest WS window
whose fault count does not exceed CD's, and report the excess memory
and space-time: "LRU needs at least 63 pages of memory, 442% more than
CD needs, to generate at most 521 page faults."  When even the largest
allocation cannot reach CD's fault count (possible because CD's
allocation varies while cold faults bound the static policies from
below), the full-space configuration is reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.config import CDVariant, table34_rows
from repro.experiments.report import format_table
from repro.experiments.runner import artifacts_for
from repro.experiments.table1 import run_variant
from repro.vm.metrics import percent_excess


@dataclass(frozen=True)
class Table4Row:
    label: str
    mem_cd: float
    pf_cd: int
    st_cd: float
    lru_frames: int
    mem_lru: float
    st_lru: float
    lru_reached: bool  # False when even the full space faults more than CD
    ws_tau: int
    mem_ws: float
    st_ws: float
    ws_reached: bool

    @property
    def pct_mem_lru(self) -> float:
        return percent_excess(self.mem_lru, self.mem_cd)

    @property
    def pct_mem_ws(self) -> float:
        return percent_excess(self.mem_ws, self.mem_cd)

    @property
    def pct_st_lru(self) -> float:
        return percent_excess(self.st_lru, self.st_cd)

    @property
    def pct_st_ws(self) -> float:
        return percent_excess(self.st_ws, self.st_cd)


def generate_table4(variants: Optional[List[CDVariant]] = None) -> List[Table4Row]:
    """Compute every row of Table 4."""
    rows = []
    for variant in variants or table34_rows():
        artifacts = artifacts_for(variant.workload, with_locks=variant.with_locks)
        cd = run_variant(variant)
        frames = artifacts.lru.min_frames_with_faults_at_most(cd.page_faults)
        lru_reached = frames is not None
        if frames is None:
            frames = max(artifacts.lru.max_useful_frames, 1)
        lru = artifacts.lru.result(frames)
        tau = artifacts.ws.min_tau_with_faults_at_most(cd.page_faults)
        ws_reached = tau is not None
        if tau is None:
            tau = max(artifacts.trace.length, 1)
        ws = artifacts.ws.result(tau)
        rows.append(
            Table4Row(
                label=variant.label,
                mem_cd=cd.mem_average,
                pf_cd=cd.page_faults,
                st_cd=cd.space_time,
                lru_frames=frames,
                mem_lru=lru.mem_average,
                st_lru=lru.space_time,
                lru_reached=lru_reached,
                ws_tau=tau,
                mem_ws=ws.mem_average,
                st_ws=ws.space_time,
                ws_reached=ws_reached,
            )
        )
    return rows


def render_table4(rows: Optional[List[Table4Row]] = None) -> str:
    rows = rows if rows is not None else generate_table4()
    return format_table(
        ["PROGRAM", "PF(CD)", "%MEM LRU", "%ST LRU", "%MEM WS", "%ST WS"],
        [
            (
                r.label,
                r.pf_cd,
                round(r.pct_mem_lru, 1),
                round(r.pct_st_lru, 1),
                round(r.pct_mem_ws, 1),
                round(r.pct_st_ws, 1),
            )
            for r in rows
        ],
        title=(
            "Table 4: The Cost of Generating The Same Number of Page Faults "
            "as CD by LRU and WS"
        ),
    )
