"""Ablation studies beyond the paper's tables.

Three studies backing the design decisions called out in DESIGN.md:

* **Policy zoo** — every implemented policy (LRU, FIFO, OPT, WS, PFF,
  CD) replayed at (approximately) the same average memory, extending
  Table 3 with the static FIFO baseline, the offline OPT bound, and the
  PFF policy the paper's introduction discusses.
* **Sizing strategy** — ACTIVE_PAGE vs CONSERVATIVE column sizing in
  the locality calculus (the Figure-5 vs Figure-1 reading).
* **LOCK effectiveness** — the paper explicitly leaves LOCK/UNLOCK
  unevaluated ("The effectiveness of LOCK and UNLOCK directives is not
  studied in this work"); this ablation studies it: CD with and without
  LOCK processing at each directive-set level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.locality import SizingStrategy
from repro.experiments.report import format_table
from repro.experiments.runner import artifacts_for
from repro.vm.metrics import SimulationResult
from repro.vm.policies import (
    AdaptiveCDPolicy,
    CDConfig,
    ClockPolicy,
    DampedWorkingSetPolicy,
    OPTPolicy,
    PFFPolicy,
    SampledWorkingSetPolicy,
    VariableSampledWorkingSetPolicy,
    WorkingSetPolicy,
)
from repro.vm.simulator import simulate
from repro.workloads import workload_names


@dataclass(frozen=True)
class ZooRow:
    program: str
    mem_target: float
    cd_pf: int
    lru_pf: int
    fifo_pf: int
    clock_pf: int
    opt_pf: int
    ws_pf: int
    pff_pf: int


def policy_zoo(
    names: Optional[List[str]] = None, pi_cap: Optional[int] = 2
) -> List[ZooRow]:
    """Fault counts of every policy at CD's average memory.

    The streamable policies (LRU, FIFO, WS) come from one shared scan
    of the trace (:meth:`WorkloadArtifacts.policy_results`) instead of
    one event-driven replay each; CLOCK and OPT keep the event-driven
    path (reference-bit state and future knowledge don't stream).
    """
    from repro.vm.stream import StreamRequest

    rows = []
    for name in names or workload_names():
        artifacts = artifacts_for(name)
        cd = artifacts.cd_result(CDConfig(pi_cap=pi_cap))
        frames = max(1, round(cd.mem_average))
        trace = artifacts.trace
        tau = artifacts.ws.tau_for_mem(cd.mem_average)
        lru, fifo, ws = artifacts.policy_results(
            [
                StreamRequest.lru(frames),
                StreamRequest.fifo(frames),
                StreamRequest.ws(tau),
            ]
        )
        clock = simulate(trace, ClockPolicy(frames=frames))
        opt = simulate(trace, OPTPolicy(frames=frames))
        pff = _pff_at_mem(trace, cd.mem_average)
        rows.append(
            ZooRow(
                program=name,
                mem_target=cd.mem_average,
                cd_pf=cd.page_faults,
                lru_pf=lru.page_faults,
                fifo_pf=fifo.page_faults,
                clock_pf=clock.page_faults,
                opt_pf=opt.page_faults,
                ws_pf=ws.page_faults,
                pff_pf=pff.page_faults,
            )
        )
    return rows


def _pff_at_mem(trace, mem_target: float) -> SimulationResult:
    """PFF result whose average memory best matches ``mem_target``.

    PFF's memory grows with its threshold; a coarse geometric search
    plus one refinement picks the closest threshold.
    """
    best: Optional[SimulationResult] = None
    threshold = 1
    candidates = []
    while threshold <= max(trace.length, 1):
        candidates.append(threshold)
        threshold *= 4
    for t in candidates:
        result = simulate(trace, PFFPolicy(threshold=t))
        if best is None or abs(result.mem_average - mem_target) < abs(
            best.mem_average - mem_target
        ):
            best = result
    # refine around the winner
    base = int(best.parameter)
    for t in (base // 2, base * 2, max(1, base * 3 // 2)):
        if t < 1:
            continue
        result = simulate(trace, PFFPolicy(threshold=t))
        if abs(result.mem_average - mem_target) < abs(
            best.mem_average - mem_target
        ):
            best = result
    return best


def render_policy_zoo(rows: Optional[List[ZooRow]] = None) -> str:
    rows = rows if rows is not None else policy_zoo()
    return format_table(
        ["PROGRAM", "MEM", "CD", "LRU", "FIFO", "CLOCK", "OPT", "WS", "PFF"],
        [
            (
                r.program,
                round(r.mem_target, 1),
                r.cd_pf,
                r.lru_pf,
                r.fifo_pf,
                r.clock_pf,
                r.opt_pf,
                r.ws_pf,
                r.pff_pf,
            )
            for r in rows
        ],
        title="Ablation: page faults of every policy at CD's average memory",
    )


@dataclass(frozen=True)
class StrategyRow:
    program: str
    pi_cap: Optional[int]
    active_mem: float
    active_pf: int
    conservative_mem: float
    conservative_pf: int


def sizing_strategy_ablation(
    names: Optional[List[str]] = None, pi_cap: Optional[int] = 1
) -> List[StrategyRow]:
    """ACTIVE_PAGE vs CONSERVATIVE locality sizing under inner-level
    directive sets (where column-walk sizing matters most)."""
    rows = []
    for name in names or workload_names():
        active = artifacts_for(name, strategy=SizingStrategy.ACTIVE_PAGE)
        conservative = artifacts_for(name, strategy=SizingStrategy.CONSERVATIVE)
        ra = active.cd_result(CDConfig(pi_cap=pi_cap))
        rc = conservative.cd_result(CDConfig(pi_cap=pi_cap))
        rows.append(
            StrategyRow(
                program=name,
                pi_cap=pi_cap,
                active_mem=ra.mem_average,
                active_pf=ra.page_faults,
                conservative_mem=rc.mem_average,
                conservative_pf=rc.page_faults,
            )
        )
    return rows


def render_sizing_ablation(rows: Optional[List[StrategyRow]] = None) -> str:
    rows = rows if rows is not None else sizing_strategy_ablation()
    return format_table(
        ["PROGRAM", "MEM act", "PF act", "MEM cons", "PF cons"],
        [
            (
                r.program,
                round(r.active_mem, 2),
                r.active_pf,
                round(r.conservative_mem, 2),
                r.conservative_pf,
            )
            for r in rows
        ],
        title="Ablation: ACTIVE_PAGE vs CONSERVATIVE column sizing (PI cap 1)",
    )


@dataclass(frozen=True)
class LockRow:
    program: str
    pi_cap: Optional[int]
    bare_mem: float
    bare_pf: int
    locked_mem: float
    locked_pf: int

    @property
    def pf_saved(self) -> int:
        return self.bare_pf - self.locked_pf


def lock_ablation(
    names: Optional[List[str]] = None, pi_cap: Optional[int] = 1
) -> List[LockRow]:
    """The study the paper defers: does LOCK help under tight sets?"""
    rows = []
    for name in names or workload_names():
        bare = artifacts_for(name, with_locks=False)
        locked = artifacts_for(name, with_locks=True)
        rb = bare.cd_result(CDConfig(pi_cap=pi_cap))
        rl = locked.cd_result(CDConfig(pi_cap=pi_cap))
        rows.append(
            LockRow(
                program=name,
                pi_cap=pi_cap,
                bare_mem=rb.mem_average,
                bare_pf=rb.page_faults,
                locked_mem=rl.mem_average,
                locked_pf=rl.page_faults,
            )
        )
    return rows


@dataclass(frozen=True)
class AdaptiveRow:
    program: str
    adaptive_st: float
    adaptive_pf: int
    adaptive_mem: float
    best_static_st: float
    best_static_cap: Optional[int]

    @property
    def ratio(self) -> float:
        return self.adaptive_st / self.best_static_st


def adaptive_cd_study(
    names: Optional[List[str]] = None,
) -> List[AdaptiveRow]:
    """Online directive-set selection vs the best offline choice.

    The paper selects each program's directive set before execution;
    :class:`AdaptiveCDPolicy` learns a level per directive site from
    fault-rate feedback instead.  Reported: the space-time ratio against
    the best static set (an oracle over PI caps ∞/2/1).
    """
    rows = []
    for name in names or workload_names():
        artifacts = artifacts_for(name)
        adaptive = simulate(artifacts.trace, AdaptiveCDPolicy())
        static = [
            artifacts.cd_result(CDConfig(pi_cap=cap)) for cap in (None, 2, 1)
        ]
        best = min(static, key=lambda r: r.space_time)
        rows.append(
            AdaptiveRow(
                program=name,
                adaptive_st=adaptive.space_time,
                adaptive_pf=adaptive.page_faults,
                adaptive_mem=adaptive.mem_average,
                best_static_st=best.space_time,
                best_static_cap=best.parameter,
            )
        )
    return rows


def render_adaptive_study(rows: Optional[List[AdaptiveRow]] = None) -> str:
    rows = rows if rows is not None else adaptive_cd_study()
    return format_table(
        ["PROGRAM", "CD-A ST", "CD-A PF", "best static ST", "cap", "ratio"],
        [
            (
                r.program,
                r.adaptive_st,
                r.adaptive_pf,
                r.best_static_st,
                "inf" if r.best_static_cap is None else r.best_static_cap,
                round(r.ratio, 2),
            )
            for r in rows
        ],
        title="Ablation: adaptive (online) directive-set selection vs the "
        "best offline set",
    )


@dataclass(frozen=True)
class WSFamilyRow:
    program: str
    tau: int
    ws_pf: int
    ws_mem: float
    dws_pf: int
    dws_mem: float
    sws_pf: int
    sws_mem: float
    vsws_pf: int
    vsws_mem: float


def ws_family_comparison(
    names: Optional[List[str]] = None, tau: int = 1500
) -> List[WSFamilyRow]:
    """WS vs its cheaper realizations (DWS, SWS, VSWS) at one window.

    The paper's survey claims these all land near WS with different
    cost/transition-fault trade-offs ("the DWS outperforms WS by less
    than 10%"; SWS is "a cheaper realization"; VSWS cuts "both
    implementation cost and transitional page faults").
    """
    rows = []
    for name in names or workload_names():
        trace = artifacts_for(name).trace
        ws = simulate(trace, WorkingSetPolicy(tau=tau))
        dws = simulate(trace, DampedWorkingSetPolicy(tau=tau))
        sws = simulate(trace, SampledWorkingSetPolicy(interval=tau))
        vsws = simulate(
            trace,
            VariableSampledWorkingSetPolicy(
                m_min=max(1, tau // 4), l_max=tau, q_faults=4
            ),
        )
        rows.append(
            WSFamilyRow(
                program=name,
                tau=tau,
                ws_pf=ws.page_faults,
                ws_mem=ws.mem_average,
                dws_pf=dws.page_faults,
                dws_mem=dws.mem_average,
                sws_pf=sws.page_faults,
                sws_mem=sws.mem_average,
                vsws_pf=vsws.page_faults,
                vsws_mem=vsws.mem_average,
            )
        )
    return rows


def render_ws_family(rows: Optional[List[WSFamilyRow]] = None) -> str:
    rows = rows if rows is not None else ws_family_comparison()
    return format_table(
        ["PROGRAM", "WS PF", "WS MEM", "DWS PF", "SWS PF", "VSWS PF", "VSWS MEM"],
        [
            (
                r.program,
                r.ws_pf,
                round(r.ws_mem, 1),
                r.dws_pf,
                r.sws_pf,
                r.vsws_pf,
                round(r.vsws_mem, 1),
            )
            for r in rows
        ],
        title=f"Ablation: the WS family at tau = {rows[0].tau if rows else '?'}",
    )


def render_lock_ablation(rows: Optional[List[LockRow]] = None) -> str:
    rows = rows if rows is not None else lock_ablation()
    return format_table(
        ["PROGRAM", "MEM bare", "PF bare", "MEM lock", "PF lock", "PF saved"],
        [
            (
                r.program,
                round(r.bare_mem, 2),
                r.bare_pf,
                round(r.locked_mem, 2),
                r.locked_pf,
                r.pf_saved,
            )
            for r in rows
        ],
        title="Ablation: LOCK/UNLOCK effectiveness under inner directive sets (PI cap 1)",
    )
