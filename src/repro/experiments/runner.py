"""Per-workload artifact cache and CD simulation entry points.

Generating a trace and its LRU/WS sweeps costs seconds; every table
needs the same artifacts.  :func:`artifacts_for` memoizes them per
(workload, geometry) so the whole evaluation reuses one trace per
program, exactly as the paper replays one trace per program through all
policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.locality import LocalityAnalysis, SizingStrategy, analyze_program
from repro.analysis.parameters import PageConfig
from repro.directives import instrument_program
from repro.directives.model import InstrumentationPlan
from repro.tracegen.events import ReferenceTrace
from repro.tracegen.interpreter import generate_trace
from repro.vm.analyzers import LRUSweep, WSSweep
from repro.vm.metrics import SimulationResult
from repro.vm.policies import CDConfig, CDPolicy
from repro.vm.simulator import simulate
from repro.workloads import get_workload


@dataclass
class WorkloadArtifacts:
    """Everything the experiments need for one benchmark program."""

    name: str
    analysis: LocalityAnalysis
    plan: InstrumentationPlan
    trace: ReferenceTrace  # instrumented (directives included)
    lru: LRUSweep = field(repr=False, default=None)
    ws: WSSweep = field(repr=False, default=None)

    def cd_result(self, config: Optional[CDConfig] = None) -> SimulationResult:
        """Replay the trace under CD with ``config``."""
        return simulate(self.trace, CDPolicy(config))

    def best_cd_result(
        self, caps: Tuple[Optional[int], ...] = (None, 2, 1)
    ) -> SimulationResult:
        """The minimum-ST CD run across directive-set choices (PI caps).

        Mirrors the paper's procedure of rerunning a program with
        different directive sets and reporting the best.
        """
        candidates = [self.cd_result(CDConfig(pi_cap=cap)) for cap in caps]
        return min(candidates, key=lambda r: r.space_time)


_CACHE: Dict[Tuple[str, PageConfig, SizingStrategy, bool], WorkloadArtifacts] = {}


def artifacts_for(
    name: str,
    page_config: Optional[PageConfig] = None,
    strategy: SizingStrategy = SizingStrategy.ACTIVE_PAGE,
    with_locks: bool = False,
) -> WorkloadArtifacts:
    """Build (or fetch) the artifacts for one benchmark.

    ``with_locks`` defaults to False: the paper's evaluation studies the
    ALLOCATE directive ("The effectiveness of LOCK and UNLOCK directives
    is not studied in this work"); the LOCK ablation turns it on.
    """
    page_config = page_config or PageConfig()
    key = (name.upper(), page_config, strategy, with_locks)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    workload = get_workload(name)
    program = workload.program()
    symbols = workload.symbols()
    analysis = analyze_program(
        program, symbols=symbols, page_config=page_config, strategy=strategy
    )
    plan = instrument_program(program, analysis=analysis, with_locks=with_locks)
    trace = generate_trace(
        program, plan=plan, symbols=symbols, page_config=page_config
    )
    artifacts = WorkloadArtifacts(
        name=workload.name,
        analysis=analysis,
        plan=plan,
        trace=trace,
        lru=LRUSweep(trace),
        ws=WSSweep(trace),
    )
    _CACHE[key] = artifacts
    return artifacts


def clear_cache() -> None:
    """Drop all memoized artifacts (tests use this for isolation)."""
    _CACHE.clear()
