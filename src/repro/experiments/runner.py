"""Per-workload artifact cache and CD simulation entry points.

Generating a trace and its LRU/WS sweeps costs real time; every table
needs the same artifacts.  Three layers keep that cost paid once:

* an in-process memo (:data:`_CACHE`) so one Python run reuses one
  trace per (workload, geometry), exactly as the paper replays one
  trace per program through all policies;
* a **persistent disk cache** (``.repro-cache/`` by default, see
  :func:`cache_dir`) holding the trace and the per-reference sweep
  arrays keyed by a content hash of everything that determines them —
  workload source, page geometry, sizing strategy, lock mode, and the
  on-disk format version — so fresh processes warm-start;
* a process-pool warm-up (:func:`warm_artifacts`) that builds missing
  cache entries for many workloads in parallel (``--jobs``).

CD replays go through the closed-form fast path
(:mod:`repro.vm.fastsim`) whenever it is exact, and fall back to the
event-driven simulator for memory ceilings and LOCK pinning.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.analysis.locality import LocalityAnalysis, SizingStrategy, analyze_program
from repro.analysis.parameters import PageConfig
from repro.directives import instrument_program
from repro.directives.model import InstrumentationPlan
from repro.tracegen import io as trace_io
from repro.tracegen.events import ReferenceTrace
from repro.tracegen.interpreter import generate_trace
from repro.vm.analyzers import LRUSweep, WSSweep
from repro.vm.fastsim import cd_fast_applicable, simulate_cd_fast
from repro.vm.metrics import SimulationResult
from repro.vm.policies import CDConfig, CDPolicy
from repro.vm.simulator import simulate
from repro.workloads import get_workload


class StageStats:
    """Wall-time/throughput accounting per pipeline stage."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.units: Dict[str, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def add(self, stage: str, seconds: float, units: int = 0) -> None:
        self.seconds[stage] = self.seconds.get(stage, 0.0) + seconds
        self.units[stage] = self.units.get(stage, 0) + units

    def reset(self) -> None:
        self.seconds.clear()
        self.units.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    def describe(self) -> str:
        parts = []
        for stage in sorted(self.seconds):
            secs = self.seconds[stage]
            units = self.units.get(stage, 0)
            if units and secs > 0:
                parts.append(f"{stage} {secs:.2f}s ({units / secs / 1e3:.0f}k refs/s)")
            else:
                parts.append(f"{stage} {secs:.2f}s")
        parts.append(f"cache {self.cache_hits} hit / {self.cache_misses} miss")
        return " · ".join(parts)


#: process-wide stage accounting (rendered by ``table --stats``)
STATS = StageStats()


def timelines_dir() -> Optional[Path]:
    """Where per-cell CD event timelines go, or None when disabled.

    Set ``REPRO_TIMELINES_DIR`` (the ``table --timelines`` flag does) to
    make every :meth:`WorkloadArtifacts.cd_result` call persist its
    event stream as one JSONL file in that directory.
    """
    env = os.environ.get("REPRO_TIMELINES_DIR")
    return Path(env) if env else None


def _timeline_name(workload: str, config: CDConfig) -> str:
    cap = "all" if config.pi_cap is None else str(config.pi_cap)
    limit = "none" if config.memory_limit is None else str(config.memory_limit)
    return f"{workload.lower()}-cd-pi{cap}-mem{limit}.jsonl"


@dataclass
class WorkloadArtifacts:
    """Everything the experiments need for one benchmark program."""

    name: str
    analysis: LocalityAnalysis
    plan: InstrumentationPlan
    trace: ReferenceTrace  # instrumented (directives included)
    lru: LRUSweep = field(repr=False, default=None)
    ws: WSSweep = field(repr=False, default=None)

    def cd_result(self, config: Optional[CDConfig] = None) -> SimulationResult:
        """Replay the trace under CD with ``config``.

        Uses the closed-form replay when it is provably exact (no
        memory ceiling, no LOCK pinning); the event-driven simulator
        otherwise.
        """
        config = config or CDConfig()
        tracer = None
        tdir = timelines_dir()
        if tdir is not None:
            from repro.obs import JsonlSink, Tracer

            tracer = Tracer(
                JsonlSink(tdir / _timeline_name(self.name, config))
            )
        t0 = time.perf_counter()
        try:
            if cd_fast_applicable(self.trace, config):
                result = simulate_cd_fast(
                    self.trace,
                    config,
                    distances=self.lru._distances,
                    tracer=tracer,
                )
            else:
                sample = max(1, len(self.trace.pages) // 4096)
                result = simulate(
                    self.trace,
                    CDPolicy(config),
                    tracer=tracer,
                    sample_interval=sample if tracer is not None else 1,
                )
        finally:
            if tracer is not None:
                tracer.close()
        STATS.add("simulate", time.perf_counter() - t0, len(self.trace.pages))
        return result

    def policy_results(
        self,
        requests,
        backend: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> List[SimulationResult]:
        """One-pass multi-policy replay of this workload's trace.

        ``requests`` are :class:`repro.vm.stream.StreamRequest` items;
        a single scan of the trace feeds every policy at once instead
        of one full event-driven replay per policy.  Results are exact
        (the oracle's ``stream-*`` checks pin them to the event-driven
        simulator); non-streamable CD requests fall back transparently.
        """
        from repro.vm.stream import stream_simulate

        t0 = time.perf_counter()
        results = stream_simulate(
            self.trace, requests, backend=backend, chunk_size=chunk_size
        )
        STATS.add(
            "simulate",
            time.perf_counter() - t0,
            len(self.trace.pages) * len(requests),
        )
        return results

    def best_cd_result(
        self, caps: Tuple[Optional[int], ...] = (None, 2, 1)
    ) -> SimulationResult:
        """The minimum-ST CD run across directive-set choices (PI caps).

        Mirrors the paper's procedure of rerunning a program with
        different directive sets and reporting the best.
        """
        candidates = [self.cd_result(CDConfig(pi_cap=cap)) for cap in caps]
        return min(candidates, key=lambda r: r.space_time)


_CACHE: Dict[Tuple[str, PageConfig, SizingStrategy, bool], WorkloadArtifacts] = {}


# -- disk cache ----------------------------------------------------------------


def cache_dir() -> Optional[Path]:
    """The on-disk artifact cache directory, or None when disabled.

    ``REPRO_CACHE_DIR`` overrides the default ``.repro-cache``; setting
    it to an empty string disables persistence entirely.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env is not None:
        return Path(env) if env else None
    return Path(".repro-cache")


def _cache_key(
    source: str,
    page_config: PageConfig,
    strategy: SizingStrategy,
    with_locks: bool,
) -> str:
    payload = json.dumps(
        {
            "source": source,
            "page_bytes": page_config.page_bytes,
            "word_bytes": page_config.word_bytes,
            "strategy": strategy.value,
            "with_locks": with_locks,
            "format": trace_io.FORMAT_VERSION,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def _entry_paths(cdir: Path, key: str) -> Tuple[Path, Path]:
    return cdir / f"trace-{key}.npz", cdir / f"sweeps-{key}.npz"


#: per-process counter making quarantine names unique within one pid
_QUARANTINE_SEQ = itertools.count(1)


def stat_fingerprint(path: Path) -> Optional[Tuple[int, int, int]]:
    """A cheap identity for the bytes currently at ``path``.

    Entries are only ever replaced atomically (write-then-``os.replace``),
    so a rebuild changes the inode — (inode, size, mtime_ns) pins the
    exact file a failed load actually read.
    """
    try:
        st = path.stat()
    except OSError:
        return None
    return (st.st_ino, st.st_size, st.st_mtime_ns)


def quarantine_paths(
    paths,
    label: str,
    key: str,
    reason: str,
    observed: Optional[Dict[Path, Optional[Tuple[int, int, int]]]] = None,
    stacklevel: int = 4,
) -> List[str]:
    """Move bad cache files aside as uniquely named ``*.corrupt``.

    Cross-process safe: the quarantine name carries a pid/sequence
    suffix so two processes quarantining concurrently never overwrite
    each other's evidence, and when ``observed`` carries the
    :func:`stat_fingerprint` of the bytes the failed load actually
    read, a path whose fingerprint has since changed is left alone — a
    freshly rebuilt good entry must never be clobbered into
    ``*.corrupt`` by a process that raced with the rebuild.  The rename
    is best-effort — a read-only cache just stays unreadable and is
    treated as a miss each time.
    """
    renamed = []
    for path in paths:
        if not path.exists():
            continue
        if observed is not None:
            expected = observed.get(path)
            if expected is not None and stat_fingerprint(path) != expected:
                continue  # rebuilt under us: the new bytes are not ours to judge
        unique = path.with_name(
            f"{path.name}.{os.getpid()}-{next(_QUARANTINE_SEQ)}.corrupt"
        )
        try:
            os.replace(path, unique)
            renamed.append(unique.name)
        except OSError:
            pass
    warnings.warn(
        f"{label} cache entry {key} unreadable ({reason}); "
        f"quarantined {renamed or 'nothing'} and recomputing",
        RuntimeWarning,
        stacklevel=stacklevel,
    )
    return renamed


def _load_entry(
    cdir: Path, key: str, name: str
) -> Optional[Tuple[ReferenceTrace, LRUSweep, WSSweep]]:
    trace_path, sweeps_path = _entry_paths(cdir, key)
    if not (trace_path.exists() and sweeps_path.exists()):
        return None
    observed = {
        path: stat_fingerprint(path) for path in (trace_path, sweeps_path)
    }
    try:
        trace = trace_io.load_trace(trace_path)
        arrays = trace_io.load_sweeps(sweeps_path)
        lru = LRUSweep.from_arrays(
            {
                "pages": trace.pages,
                "distances": arrays["distances"],
                "distinct": arrays["distinct"],
            },
            program=name,
        )
        ws = WSSweep.from_arrays(
            {
                "pages": trace.pages,
                "backward": arrays["backward"],
                "forward": arrays["forward"],
            },
            program=name,
        )
        best = arrays.get("ws_best")
        if best is not None and int(best[4]) == ws.fault_service:
            # Rehydrate the default-grid WS optimum so warm runs skip
            # the ~80-window scan entirely.
            ws._min_st_cache = SimulationResult(
                policy="WS",
                program=name,
                page_faults=int(best[1]),
                references=len(trace.pages),
                mem_average=float(best[2]),
                space_time=float(best[3]),
                parameter=int(best[0]),
                fault_service=ws.fault_service,
            )
    except Exception as err:
        # A truncated .npz surfaces as BadZipFile/EOFError, a bit-flip
        # as anything from json/zlib/numpy — every one of them is a
        # cache miss, never a crash.  Quarantine so the bad bytes are
        # kept for inspection but never re-read.
        quarantine_paths(
            (trace_path, sweeps_path),
            "artifact",
            key,
            f"{type(err).__name__}: {err}",
            observed=observed,
        )
        return None
    return trace, lru, ws


def _store_entry(
    cdir: Path, key: str, trace: ReferenceTrace, lru: LRUSweep, ws: WSSweep
) -> None:
    try:
        cdir.mkdir(parents=True, exist_ok=True)
        trace_path, sweeps_path = _entry_paths(cdir, key)
        # Write-then-rename so a concurrent reader (or a crash) never
        # sees a half-written archive.
        tmp = trace_path.with_name(trace_path.name + f".tmp{os.getpid()}.npz")
        try:
            trace_io.save_trace(trace, tmp, compress=False)
            os.replace(tmp, trace_path)
        finally:
            if tmp.exists():
                tmp.unlink()
        best = ws.min_space_time()  # computed once, reused warm
        tmp = sweeps_path.with_name(sweeps_path.name + f".tmp{os.getpid()}.npz")
        try:
            trace_io.save_sweeps(
                {
                    "distances": lru._distances,
                    "distinct": lru._distinct,
                    "backward": ws._backward,
                    "forward": ws._forward,
                    "ws_best": np.array(
                        [
                            float(best.parameter),
                            float(best.page_faults),
                            best.mem_average,
                            best.space_time,
                            float(best.fault_service),
                        ]
                    ),
                },
                tmp,
            )
            os.replace(tmp, sweeps_path)
        finally:
            if tmp.exists():
                tmp.unlink()
    except OSError:
        pass  # a read-only filesystem must not break the experiments


# -- artifact construction -----------------------------------------------------


def artifacts_for(
    name: str,
    page_config: Optional[PageConfig] = None,
    strategy: SizingStrategy = SizingStrategy.ACTIVE_PAGE,
    with_locks: bool = False,
) -> WorkloadArtifacts:
    """Build (or fetch) the artifacts for one benchmark.

    ``with_locks`` defaults to False: the paper's evaluation studies the
    ALLOCATE directive ("The effectiveness of LOCK and UNLOCK directives
    is not studied in this work"); the LOCK ablation turns it on.
    """
    page_config = page_config or PageConfig()
    key = (name.upper(), page_config, strategy, with_locks)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    workload = get_workload(name)
    program = workload.program()
    symbols = workload.symbols()
    analysis = analyze_program(
        program, symbols=symbols, page_config=page_config, strategy=strategy
    )
    plan = instrument_program(program, analysis=analysis, with_locks=with_locks)

    cdir = cache_dir()
    disk_key = _cache_key(workload.source, page_config, strategy, with_locks)
    entry = _load_entry(cdir, disk_key, workload.name) if cdir else None
    if entry is not None:
        trace, lru, ws = entry
        STATS.cache_hits += 1
    else:
        STATS.cache_misses += 1
        t0 = time.perf_counter()
        trace = generate_trace(
            program, plan=plan, symbols=symbols, page_config=page_config
        )
        t1 = time.perf_counter()
        STATS.add("tracegen", t1 - t0, len(trace.pages))
        lru = LRUSweep(trace)
        ws = WSSweep(trace)
        STATS.add("sweeps", time.perf_counter() - t1, 2 * len(trace.pages))
        if cdir is not None:
            _store_entry(cdir, disk_key, trace, lru, ws)

    artifacts = WorkloadArtifacts(
        name=workload.name,
        analysis=analysis,
        plan=plan,
        trace=trace,
        lru=lru,
        ws=ws,
    )
    _CACHE[key] = artifacts
    return artifacts


def clear_cache(disk: bool = True) -> None:
    """Drop all memoized artifacts — in-memory and (by default) the
    on-disk entries too (tests use this for isolation)."""
    _CACHE.clear()
    if not disk:
        return
    cdir = cache_dir()
    if cdir is None or not cdir.is_dir():
        return
    for pattern in (
        "trace-*.npz",
        "sweeps-*.npz",
        "runs-*.npz",
        "static-*.npz",
        "*.corrupt",
    ):
        for path in cdir.glob(pattern):
            path.unlink(missing_ok=True)


def cache_info() -> Dict[str, object]:
    """Inspect the artifact caches (for the ``cache`` CLI subcommand)."""
    cdir = cache_dir()
    info: Dict[str, object] = {
        "memory_entries": len(_CACHE),
        "dir": str(cdir) if cdir else None,
        "disk_entries": 0,
        "disk_bytes": 0,
        "quarantined": 0,
    }
    if cdir is not None and cdir.is_dir():
        files = list(cdir.glob("trace-*.npz")) + list(cdir.glob("sweeps-*.npz"))
        info["disk_entries"] = len(files)
        info["disk_bytes"] = sum(f.stat().st_size for f in files)
        info["quarantined"] = len(list(cdir.glob("*.corrupt")))
    return info


def cache_entry_key(
    name: str,
    page_config: Optional[PageConfig] = None,
    strategy: SizingStrategy = SizingStrategy.ACTIVE_PAGE,
    with_locks: bool = False,
) -> str:
    """The disk-cache key one (workload, geometry, locks) spec maps to.

    The service daemon uses this for per-tenant byte accounting: a
    submission is charged for exactly the entries its warm jobs were
    first to materialize (see :func:`cache_entry_bytes`).
    """
    page_config = page_config or PageConfig()
    return _cache_key(
        get_workload(name).source, page_config, strategy, with_locks
    )


def cache_entry_exists(key: str) -> bool:
    """True when both archives of entry ``key`` are on disk."""
    cdir = cache_dir()
    if cdir is None:
        return False
    trace_path, sweeps_path = _entry_paths(cdir, key)
    return trace_path.exists() and sweeps_path.exists()


def cache_entry_bytes(key: str) -> int:
    """On-disk size of entry ``key`` (0 when absent or cache disabled)."""
    cdir = cache_dir()
    if cdir is None:
        return 0
    total = 0
    for path in _entry_paths(cdir, key):
        try:
            total += path.stat().st_size
        except OSError:
            pass
    return total


# -- parallel warm-up ----------------------------------------------------------


#: (workload name, with_locks) pairs; geometry/strategy ride along per call
WarmSpec = Tuple[str, bool]


class WarmupError(RuntimeError):
    """One or more workloads could not be warmed.

    Raised *after* every other spec has been built, so a single bad
    workload costs its own table cells and nothing else.  ``failures``
    maps each failing :data:`WarmSpec` to its error string.
    """

    def __init__(self, failures: Dict[WarmSpec, str]):
        self.failures = dict(failures)
        details = "; ".join(
            f"{name}{'+locks' if with_locks else ''}: {error}"
            for (name, with_locks), error in sorted(self.failures.items())
        )
        super().__init__(
            f"{len(self.failures)} workload(s) failed to warm: {details}"
        )


def warm_artifacts(
    specs: Iterable[WarmSpec],
    page_config: Optional[PageConfig] = None,
    strategy: SizingStrategy = SizingStrategy.ACTIVE_PAGE,
    jobs: Optional[int] = None,
) -> None:
    """Ensure artifacts exist for every (workload, with_locks) spec,
    fanning independent builds across supervised worker processes when
    ``jobs`` > 1 (one crash, hang, or kill fails only its own spec, and
    transient failures get one retry).

    Parallel builds communicate through the disk cache; with persistence
    disabled (``REPRO_CACHE_DIR=""``) the fan-out would be wasted work,
    so everything runs sequentially in-process instead.

    A spec that cannot be built never aborts the others: every failure
    is collected and reported at the end as one :class:`WarmupError`.
    """
    page_config = page_config or PageConfig()
    specs = list(dict.fromkeys(specs))
    todo: List[WarmSpec] = []
    cdir = cache_dir()
    for name, with_locks in specs:
        mem_key = (name.upper(), page_config, strategy, with_locks)
        if mem_key in _CACHE:
            continue
        if cdir is not None:
            disk_key = _cache_key(
                get_workload(name).source, page_config, strategy, with_locks
            )
            trace_path, sweeps_path = _entry_paths(cdir, disk_key)
            if trace_path.exists() and sweeps_path.exists():
                continue
        todo.append((name, with_locks))

    failures: Dict[WarmSpec, str] = {}
    jobs = jobs or 1
    if jobs > 1 and cdir is not None and len(todo) > 1:
        from repro.engine.jobs import JobSpec
        from repro.engine.supervisor import Engine, EngineConfig

        t0 = time.perf_counter()
        job_ids: Dict[str, WarmSpec] = {}
        job_specs = []
        for name, with_locks in todo:
            job_id = f"warm:{name.lower()}" + ("+locks" if with_locks else "")
            job_ids[job_id] = (name, with_locks)
            job_specs.append(
                JobSpec(
                    id=job_id,
                    kind="warm",
                    params={
                        "workload": name,
                        "with_locks": with_locks,
                        "page_bytes": page_config.page_bytes,
                        "word_bytes": page_config.word_bytes,
                        "strategy": strategy.value,
                    },
                )
            )
        engine = Engine(
            EngineConfig(
                max_workers=min(jobs, len(todo)),
                max_retries=1,
                backoff_base=0.05,
            )
        )
        report = engine.run(job_specs)
        for job_id, error in report.failed.items():
            failures[job_ids[job_id]] = error
        STATS.add("warm-pool", time.perf_counter() - t0)
        todo = []
    for name, with_locks in todo:
        try:
            artifacts_for(
                name, page_config=page_config, strategy=strategy,
                with_locks=with_locks,
            )
        except Exception as err:
            failures[(name, with_locks)] = f"{type(err).__name__}: {err}"
    # pull everything (parallel builds included) into the process memo
    for name, with_locks in specs:
        if (name, with_locks) in failures:
            continue
        try:
            artifacts_for(
                name, page_config=page_config, strategy=strategy,
                with_locks=with_locks,
            )
        except Exception as err:
            failures[(name, with_locks)] = f"{type(err).__name__}: {err}"
    if failures:
        raise WarmupError(failures)


def warm_for_table(which: str, jobs: Optional[int] = None) -> None:
    """Pre-build the artifacts a ``table`` subcommand will need."""
    from repro.experiments.config import table1_rows, table2_rows

    which = which.lower()
    if which == "1":
        rows = table1_rows()
    elif which in ("2", "3", "4"):
        rows = table2_rows()
    else:  # ablations/studies pull broadly: warm the full default set
        from repro.workloads import all_workloads

        warm_artifacts([(w.name, False) for w in all_workloads()], jobs=jobs)
        return
    warm_artifacts(
        [(v.workload, v.with_locks) for v in rows], jobs=jobs
    )
