"""Experiment harness: regenerates every table of the paper's evaluation.

* :mod:`runner` — per-workload cache of programs, analyses, directive
  plans, traces, and LRU/WS sweeps;
* :mod:`config` — the fourteen CD experiment rows (MAIN/MAIN1-3,
  FDJAC/FDJAC1, TQL1/TQL2, and the six single-variant programs);
* :mod:`table1` … :mod:`table4` — the four tables of Section 5;
* :mod:`ablations` — the policy zoo, sizing-strategy and LOCK ablations
  this reproduction adds;
* :mod:`report` — plain-text table rendering.
"""

from repro.experiments.config import CDVariant, table1_rows, table2_rows, table34_rows
from repro.experiments.runner import WorkloadArtifacts, artifacts_for, clear_cache
from repro.experiments.report import format_table
from repro.experiments.table1 import generate_table1
from repro.experiments.table2 import generate_table2
from repro.experiments.table3 import generate_table3
from repro.experiments.table4 import generate_table4
from repro.experiments.ablations import (
    lock_ablation,
    policy_zoo,
    sizing_strategy_ablation,
    ws_family_comparison,
)
from repro.experiments.controllability import controllability_study
from repro.experiments.curves import policy_curves
from repro.experiments.geometry import geometry_sweep
from repro.experiments.multiprog_study import multiprog_study

__all__ = [
    "CDVariant",
    "WorkloadArtifacts",
    "artifacts_for",
    "clear_cache",
    "controllability_study",
    "format_table",
    "generate_table1",
    "generate_table2",
    "generate_table3",
    "generate_table4",
    "geometry_sweep",
    "lock_ablation",
    "multiprog_study",
    "policy_curves",
    "policy_zoo",
    "sizing_strategy_ablation",
    "table1_rows",
    "table2_rows",
    "table34_rows",
    "ws_family_comparison",
]
