"""The fourteen CD experiment rows of the paper's evaluation.

"Programs MAIN, FDJAC and TQL were rerun with different sets of
directives" (four sets for MAIN, two each for FDJAC and TQL).  A
directive *set* is modeled by ``CDConfig.pi_cap``: the cap selects which
level of the locality hierarchy the executed directives describe —
``None`` honors the outermost (largest) requests, ``1`` only the
innermost.  The base ``MAIN`` row additionally executes the LOCK/UNLOCK
directives (the full directive set), which pins the outer-loop pages the
inner-level allocation would otherwise churn.

Single-variant programs run at ``pi_cap=2``: the mid-level sets, which
are also what an OS under moderate contention would grant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.vm.policies import CDConfig


@dataclass(frozen=True)
class CDVariant:
    """One experiment row: a workload replayed under one directive set."""

    label: str  # row name as printed in the paper's tables
    workload: str  # catalog name of the program
    config: CDConfig
    with_locks: bool = False  # execute LOCK/UNLOCK events too

    def describe(self) -> str:
        cap = self.config.pi_cap
        level = "outermost" if cap is None else f"PI<={cap}"
        locks = ", locks" if self.with_locks else ""
        return f"{self.label}: {self.workload} with {level} directives{locks}"


#: Table 1 rows — the directive-set study on MAIN, FDJAC and TQL.
TABLE1_VARIANTS: List[CDVariant] = [
    CDVariant("MAIN", "MAIN", CDConfig(pi_cap=2), with_locks=True),
    CDVariant("MAIN1", "MAIN", CDConfig(pi_cap=None)),
    CDVariant("MAIN2", "MAIN", CDConfig(pi_cap=2)),
    CDVariant("MAIN3", "MAIN", CDConfig(pi_cap=1)),
    CDVariant("FDJAC", "FDJAC", CDConfig(pi_cap=1)),
    CDVariant("FDJAC1", "FDJAC", CDConfig(pi_cap=None)),
    CDVariant("TQL1", "TQL", CDConfig(pi_cap=2)),
    CDVariant("TQL2", "TQL", CDConfig(pi_cap=1)),
]

#: The six programs that appear with a single directive set.
SINGLE_VARIANTS: List[CDVariant] = [
    CDVariant("FIELD", "FIELD", CDConfig(pi_cap=2)),
    CDVariant("INIT", "INIT", CDConfig(pi_cap=2)),
    CDVariant("APPROX", "APPROX", CDConfig(pi_cap=2)),
    CDVariant("HYBRJ", "HYBRJ", CDConfig(pi_cap=2)),
    CDVariant("CONDUCT", "CONDUCT", CDConfig(pi_cap=2)),
    CDVariant("HWSCRT", "HWSCRT", CDConfig(pi_cap=2)),
]

_BY_LABEL = {v.label: v for v in TABLE1_VARIANTS + SINGLE_VARIANTS}


def variant(label: str) -> CDVariant:
    """Look up one experiment row by its table label."""
    try:
        return _BY_LABEL[label.upper()]
    except KeyError:
        known = ", ".join(_BY_LABEL)
        raise KeyError(f"unknown variant {label!r}; known: {known}") from None


def table1_rows() -> List[CDVariant]:
    """Rows of Table 1 (directive-set study)."""
    return list(TABLE1_VARIANTS)


def table2_rows() -> List[CDVariant]:
    """Rows of Table 2 (minimal-ST comparison) in the paper's order."""
    labels = ["MAIN3", "FDJAC", "FIELD", "INIT", "APPROX", "HYBRJ", "CONDUCT", "TQL1"]
    return [variant(label) for label in labels]


def table34_rows() -> List[CDVariant]:
    """The fourteen rows of Tables 3 and 4, in the paper's order."""
    labels = [
        "MAIN",
        "MAIN1",
        "MAIN2",
        "MAIN3",
        "FDJAC",
        "FDJAC1",
        "FIELD",
        "INIT",
        "APPROX",
        "HYBRJ",
        "CONDUCT",
        "TQL1",
        "TQL2",
        "HWSCRT",
    ]
    return [variant(label) for label in labels]


def paper_reference_values() -> dict:
    """The paper's published numbers, for EXPERIMENTS.md side-by-side
    reporting (Table 1: (MEM, PF, ST×10⁻⁶))."""
    return {
        "table1": {
            "MAIN": (1.62, 531, 3.39),
            "MAIN1": (20.37, 144, 3.89),
            "MAIN2": (12.23, 319, 10.6),
            "MAIN3": (1.11, 652, 2.77),
            "FDJAC": (2.47, 178, 1.46),
            "FDJAC1": (3.11, 175, 2.04),
            "TQL1": (2.48, 322, 2.84),
            "TQL2": (2.02, 421, 3.063),
        },
        "table2": {  # (%ST LRU vs CD, %ST WS vs CD)
            "MAIN3": (47, 17),
            "FDJAC": (27, 39),
            "FIELD": (23, 6),
            "INIT": (133, 22),
            "APPROX": (36, 58),
            "HYBRJ": (31, 32),
            "CONDUCT": (288, 32),
            "TQL1": (7, 4),
        },
        "table3": {  # (ΔPF LRU, %ST LRU, ΔPF WS, %ST WS)
            "MAIN": (1530, 146.3, 0, -4.7),
            "MAIN1": (236, 338.87, 207, 316.45),
            "MAIN2": (207, 35.5, 207, 19.8),
            "MAIN3": (22665, 1585.9, 22665, 1585.9),
            "FDJAC": (337, 115.75, 293, 91.1),
            "FDJAC1": (53, -6.8, 296, 60.78),
            "FIELD": (2643, 1538.9, 2, 18),
            "INIT": (2287, 979.5, 775, 630),
            "APPROX": (365, 54.3, 203, 83.5),
            "HYBRJ": (317, 159.1, 283, 139.1),
            "CONDUCT": (3477, 988.3, 1944, 1840.5),
            "TQL1": (1017, 191.55, 958, 223.9),
            "TQL2": (918, 170.6, 969, 214.4),
            "HWSCRT": (4028, 1047.9, 4033, 2265.2),
        },
        "table4": {  # (%MEM LRU, %ST LRU, %MEM WS, %ST WS)
            "MAIN": (150, 32, 14, -4.7),
            "MAIN1": (170, 415.68, 72.5, 216.45),
            "MAIN2": (88, 58, 80.5, 49.5),
            "MAIN3": (170.3, 46.6, 64, 16.6),
            "FDJAC": (102, 26.7, 123, 39),
            "FDJAC1": (60.7, -9.3, 77, -0.3),
            "FIELD": (106.8, 29.5, 53.4, 28),
            "INIT": (171.2, 132.5, 151.8, 108.2),
            "APPROX": (105.8, 36.2, 34.4, 77.9),
            "HYBRJ": (41.5, 29.5, 82.3, 140),
            "CONDUCT": (283.7, 324.6, 11.6, 36.1),
            "TQL1": (61.3, 34.8, 86.4, 4.2),
            "TQL2": (98, 25.2, 128.8, -3.3),
            "HWSCRT": (442, 433.5, 124.6, 234.3),
        },
    }
