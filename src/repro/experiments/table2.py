"""Table 2: "Comparing Minimal Space Time Cost Values of LRU and WS
versus CD" — %ST of the best LRU allocation and the best WS window over
the best CD directive set.

The paper sweeps LRU over all allocations and WS over all windows and
compares each policy's minimum-ST point against the *minimum-ST CD
run*: its MAIN row is labeled MAIN3 and its narrative reads "this is
lower than the minimum ST cost under the WS by 17% and under LRU by
47%" — i.e. the directive set that minimized CD's space-time for that
program.  We do the same: per program, CD is replayed with each
directive-set choice (PI cap ∞/2/1) and the best is compared.
``%ST = (ST_policy − ST_CD) / ST_CD × 100``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.config import CDVariant, table2_rows
from repro.experiments.report import format_table
from repro.experiments.runner import artifacts_for
from repro.vm.metrics import percent_excess


@dataclass(frozen=True)
class Table2Row:
    label: str
    st_cd: float
    cd_cap: Optional[int]  # the PI cap of the winning CD directive set
    st_lru_min: float
    st_ws_min: float
    lru_frames: int  # allocation at LRU's minimum
    ws_tau: int  # window at WS's minimum

    @property
    def pct_st_lru(self) -> float:
        return percent_excess(self.st_lru_min, self.st_cd)

    @property
    def pct_st_ws(self) -> float:
        return percent_excess(self.st_ws_min, self.st_cd)


def generate_table2(
    variants: Optional[List[CDVariant]] = None, mode: str = "trace"
) -> List[Table2Row]:
    """Compute every row of Table 2.

    ``mode="trace"`` replays the full reference trace (the default);
    ``mode="symbolic"`` derives every cell from the run-structured
    trace via the weighted analyzers; ``mode="static"`` derives them
    from the closed-form static string without materializing a trace
    at all — the rows are identical across all three modes (the test
    suite asserts row-for-row equality), only the cost differs.
    """
    if mode not in ("trace", "symbolic", "static"):
        raise ValueError(f"unknown table mode {mode!r}")
    if mode == "symbolic":
        from repro.analysis.symbolic.artifacts import symbolic_artifacts_for

        builder = symbolic_artifacts_for
    elif mode == "static":
        from repro.analysis.staticloc.artifacts import static_artifacts_for

        builder = static_artifacts_for
    else:
        builder = artifacts_for
    rows = []
    for variant in variants or table2_rows():
        artifacts = builder(variant.workload, with_locks=variant.with_locks)
        cd = artifacts.best_cd_result()
        lru_best = artifacts.lru.min_space_time()
        ws_best = artifacts.ws.min_space_time()
        rows.append(
            Table2Row(
                label=variant.label,
                st_cd=cd.space_time,
                cd_cap=cd.parameter,
                st_lru_min=lru_best.space_time,
                st_ws_min=ws_best.space_time,
                lru_frames=int(lru_best.parameter),
                ws_tau=int(ws_best.parameter),
            )
        )
    return rows


def render_table2(
    rows: Optional[List[Table2Row]] = None, mode: str = "trace"
) -> str:
    rows = rows if rows is not None else generate_table2(mode=mode)
    return format_table(
        ["PROGRAM", "%ST LRU vs CD", "%ST WS vs CD"],
        [(r.label, round(r.pct_st_lru), round(r.pct_st_ws)) for r in rows],
        title="Table 2: Comparing Minimal Space Time Cost Values of LRU and WS versus CD",
    )
