"""Table 3: "Comparing LRU and WS versus CD When Similar Average Memory
is Allocated to All Policies" — ΔPF and %ST at matched MEM.

"We chose to select the average memory allocated by CD.  Similar values
were obtained by direct assignment for LRU or by adjusting the WS
parameter, the window size τ."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.config import CDVariant, table34_rows
from repro.experiments.report import format_table
from repro.experiments.runner import artifacts_for
from repro.experiments.table1 import run_variant
from repro.vm.metrics import percent_excess


@dataclass(frozen=True)
class Table3Row:
    label: str
    mem_cd: float
    pf_cd: int
    st_cd: float
    lru_frames: int
    pf_lru: int
    st_lru: float
    ws_tau: int
    mem_ws: float
    pf_ws: int
    st_ws: float

    @property
    def delta_pf_lru(self) -> int:
        return self.pf_lru - self.pf_cd

    @property
    def delta_pf_ws(self) -> int:
        return self.pf_ws - self.pf_cd

    @property
    def pct_st_lru(self) -> float:
        return percent_excess(self.st_lru, self.st_cd)

    @property
    def pct_st_ws(self) -> float:
        return percent_excess(self.st_ws, self.st_cd)


def generate_table3(variants: Optional[List[CDVariant]] = None) -> List[Table3Row]:
    """Compute every row of Table 3."""
    rows = []
    for variant in variants or table34_rows():
        artifacts = artifacts_for(variant.workload, with_locks=variant.with_locks)
        cd = run_variant(variant)
        frames = max(1, round(cd.mem_average))
        lru = artifacts.lru.result(frames)
        tau = artifacts.ws.tau_for_mem(cd.mem_average)
        ws = artifacts.ws.result(tau)
        rows.append(
            Table3Row(
                label=variant.label,
                mem_cd=cd.mem_average,
                pf_cd=cd.page_faults,
                st_cd=cd.space_time,
                lru_frames=frames,
                pf_lru=lru.page_faults,
                st_lru=lru.space_time,
                ws_tau=tau,
                mem_ws=ws.mem_average,
                pf_ws=ws.page_faults,
                st_ws=ws.space_time,
            )
        )
    return rows


def render_table3(rows: Optional[List[Table3Row]] = None) -> str:
    rows = rows if rows is not None else generate_table3()
    return format_table(
        ["PROGRAM", "MEM(CD)", "dPF LRU", "%ST LRU", "dPF WS", "%ST WS"],
        [
            (
                r.label,
                round(r.mem_cd, 2),
                r.delta_pf_lru,
                round(r.pct_st_lru, 1),
                r.delta_pf_ws,
                round(r.pct_st_ws, 1),
            )
            for r in rows
        ],
        title=(
            "Table 3: Comparing LRU and WS versus CD When Similar Average "
            "Memory is Allocated to All Policies"
        ),
    )
