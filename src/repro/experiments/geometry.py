"""Page-geometry sensitivity study.

The page size ``P`` is the paper's one *system-dependent* locality
parameter; the evaluation fixes it at 256 bytes.  This ablation sweeps
it (128B…1KB) and re-runs the whole pipeline — analysis, directive
insertion, trace generation, and the CD/LRU comparison at matched
memory — at every geometry.  The expectation being checked: CD's
advantage is not an artifact of the 256-byte page; the compiler's
locality arithmetic scales with P because AVS and CVS are computed from
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.parameters import PageConfig
from repro.experiments.report import format_table
from repro.experiments.runner import artifacts_for
from repro.vm.policies import CDConfig


@dataclass(frozen=True)
class GeometryRow:
    program: str
    page_bytes: int
    virtual_pages: int
    cd_mem: float
    cd_pf: int
    lru_pf: int

    @property
    def delta_pf(self) -> int:
        return self.lru_pf - self.cd_pf


def geometry_sweep(
    names: Sequence[str] = ("CONDUCT", "APPROX"),
    page_sizes: Sequence[int] = (128, 256, 512, 1024),
    pi_cap: Optional[int] = 2,
) -> List[GeometryRow]:
    """CD vs LRU at matched memory across page sizes."""
    rows = []
    for name in names:
        for page_bytes in page_sizes:
            artifacts = artifacts_for(
                name, page_config=PageConfig(page_bytes=page_bytes)
            )
            cd = artifacts.cd_result(CDConfig(pi_cap=pi_cap))
            frames = max(1, round(cd.mem_average))
            lru = artifacts.lru.result(frames)
            rows.append(
                GeometryRow(
                    program=name,
                    page_bytes=page_bytes,
                    virtual_pages=artifacts.trace.total_pages,
                    cd_mem=cd.mem_average,
                    cd_pf=cd.page_faults,
                    lru_pf=lru.page_faults,
                )
            )
    return rows


def render_geometry(rows: Optional[List[GeometryRow]] = None) -> str:
    rows = rows if rows is not None else geometry_sweep()
    return format_table(
        ["PROGRAM", "page B", "V", "MEM(CD)", "PF CD", "PF LRU", "dPF"],
        [
            (
                r.program,
                r.page_bytes,
                r.virtual_pages,
                round(r.cd_mem, 1),
                r.cd_pf,
                r.lru_pf,
                r.delta_pf,
            )
            for r in rows
        ],
        title="Ablation: page-size sensitivity (CD vs LRU at matched memory)",
    )
