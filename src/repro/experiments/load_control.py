"""Heavy-traffic load control: throughput/response vs. offered load.

The deliverable figure of the multiprogramming scenario family: sweep
offered load over a shared frame pool under each admission policy in
:data:`repro.vm.multiprog.ADMISSION_POLICIES` and tabulate throughput,
response time, and fault volume.  The uncontrolled baseline falls off
the classic thrashing cliff as load climbs; knee-based (Denning),
WS-estimate, and CD-directive-aware control flat-top instead — that
contrast is asserted by :func:`detect_cliff` and smoke-checked in CI.

Job mixes come from two sources so the sweep scales from CI-smoke to
heavy traffic:

* the traced benchmark workloads (``repro.workloads``), via the
  cached artifact layer; and
* fuzzer-generated nests from the oracle's program generator —
  thousands of distinct programs for the hundreds-to-thousands-of-
  processes regime, each instrumented with ALLOCATE chains so the CD
  policy has directives to read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.report import format_table
from repro.vm.multiprog import (
    ADMISSION_POLICIES,
    JobProfile,
    LoadControlledPool,
    PoolResult,
    poisson_arrivals,
)

#: default sweep shape (kept small enough for CI; `repro multiprog`
#: exposes every knob)
DEFAULT_LOADS = (0.25, 0.5, 1.0, 2.0, 4.0)
DEFAULT_POLICIES = tuple(ADMISSION_POLICIES)


@dataclass(frozen=True)
class LoadPoint:
    """One (policy, offered-load) cell of the sweep."""

    policy: str
    load: float
    arrivals: int
    completed: int
    throughput: float  # normalized: fraction of total CPU capacity
    mean_response: float
    p95_response: float
    faults: int
    deferrals: int
    suspensions: int
    utilization: float

    @classmethod
    def from_result(cls, load: float, result: PoolResult) -> "LoadPoint":
        return cls(
            policy=result.policy,
            load=load,
            arrivals=result.arrivals,
            completed=result.completed,
            throughput=result.normalized_throughput,
            mean_response=result.mean_response,
            p95_response=result.p95_response,
            faults=result.faults,
            deferrals=result.deferrals,
            suspensions=result.suspensions,
            utilization=result.utilization,
        )


def nest_profiles(
    seeds: Sequence[int],
    max_refs: int = 30_000,
    with_directives: bool = True,
) -> List[JobProfile]:
    """Job profiles from fuzzer-generated nests.

    Each seed becomes one distinct program (the oracle's generator),
    instrumented with ALLOCATE directives so CD admission has real
    compiler output to read.  Degenerate traces (no references) are
    dropped.
    """
    from repro.directives import instrument_program
    from repro.oracle.generator import generate_case
    from repro.tracegen.interpreter import generate_trace

    profiles: List[JobProfile] = []
    for seed in seeds:
        case = generate_case(seed)
        plan = None
        if with_directives:
            plan = instrument_program(case.program, with_locks=False)
        trace = generate_trace(
            case.program, plan=plan, max_references=max_refs
        )
        if len(trace.pages) == 0:
            continue
        profiles.append(
            JobProfile.from_trace(trace, name=f"nest{seed}")
        )
    return profiles


def workload_profiles(
    names: Sequence[str], max_refs: Optional[int] = None
) -> List[JobProfile]:
    """Job profiles for traced benchmark workloads (cached artifacts)."""
    from repro.experiments.runner import artifacts_for

    return [
        JobProfile.from_trace(
            artifacts_for(name).trace, name=name, max_refs=max_refs
        )
        for name in names
    ]


def load_control_sweep(
    profiles: Sequence[JobProfile],
    loads: Sequence[float] = DEFAULT_LOADS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    total_frames: int = 64,
    cpus: int = 1,
    arrival_horizon: int = 400_000,
    run_horizon: Optional[int] = 1_200_000,
    seed: int = 0,
    tracer=None,
) -> List[LoadPoint]:
    """The sweep: every policy at every offered load.

    The arrival stream for a given ``(seed, load)`` is identical
    across policies (same Poisson draw), so each column of the table
    is a paired comparison.
    """
    if not profiles:
        raise ValueError("need at least one job profile")
    points: List[LoadPoint] = []
    for load in loads:
        arrivals = poisson_arrivals(
            profiles, load=load, horizon=arrival_horizon,
            seed=seed, cpus=cpus,
        )
        for policy in policies:
            pool = LoadControlledPool(
                arrivals,
                total_frames=total_frames,
                policy=policy,
                cpus=cpus,
                horizon=run_horizon,
                tracer=tracer,
            )
            result = pool.run()
            if result.violations:
                raise AssertionError(
                    f"pool conservation violated at load={load} "
                    f"policy={policy}: {result.violations[:3]}"
                )
            points.append(LoadPoint.from_result(load, result))
    return points


def detect_cliff(
    points: Sequence[LoadPoint], policy: str, drop: float = 0.6
) -> bool:
    """True if ``policy`` exhibits a thrashing cliff in this sweep.

    A cliff means throughput at the heaviest load fell below ``drop``
    of the sweep's *achievable* peak — the best throughput any policy
    reached at any load on the same paired arrival stream.  (Judging
    against the policy's own peak would hide a baseline so congested
    it never peaks at all.)  This is the signature the uncontrolled
    baseline must show and controlled policies must not.
    """
    curve = sorted(
        (p for p in points if p.policy == policy), key=lambda p: p.load
    )
    if len(curve) < 2:
        return False
    peak = max(p.throughput for p in points)
    if peak <= 0:
        return False
    return curve[-1].throughput < drop * peak


def cliff_report(points: Sequence[LoadPoint]) -> Dict[str, bool]:
    """policy -> did it fall off a cliff."""
    return {
        policy: detect_cliff(points, policy)
        for policy in dict.fromkeys(p.policy for p in points)
    }


def _default_profiles() -> List[JobProfile]:
    """The standing mix for the rendered table: three traced
    benchmarks plus three fuzzer nests (CD-directive carriers)."""
    profiles = workload_profiles(
        ("TQL", "FDJAC", "HYBRJ"), max_refs=30_000
    )
    profiles.extend(nest_profiles((11, 23, 47)))
    return profiles


def render_load_control(
    points: Optional[List[LoadPoint]] = None,
) -> str:
    """The throughput/response-vs-load table plus cliff verdicts."""
    if points is None:
        points = load_control_sweep(_default_profiles())
    table = format_table(
        [
            "policy",
            "load",
            "jobs",
            "done",
            "thru",
            "resp",
            "p95",
            "faults",
            "defer",
            "susp",
            "util",
        ],
        [
            (
                p.policy,
                p.load,
                p.arrivals,
                p.completed,
                round(p.throughput, 3),
                int(p.mean_response) if p.completed else "-",
                int(p.p95_response) if p.completed else "-",
                p.faults,
                p.deferrals,
                p.suspensions,
                round(p.utilization, 2),
            )
            for p in sorted(points, key=lambda p: (p.policy, p.load))
        ],
        title="Load control: throughput and response vs. offered load",
    )
    verdicts = cliff_report(points)
    lines = [table, ""]
    for policy, cliff in sorted(verdicts.items()):
        tag = "thrashing cliff" if cliff else "flat-topped (no cliff)"
        lines.append(f"  {policy:12s} {tag}")
    return "\n".join(lines)
