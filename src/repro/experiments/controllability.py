"""Controllability study: how precisely can a policy hit a memory target?

The paper's motivation leans on [GrDe78]/[Denn80]'s claim that WS is a
"10% de-tuned policy" — that adjusting τ can place a program's average
memory within ~10% of any target — and on [ALMY82]/[AbLM84]'s finding
that for *numerical* programs this controllability "is too optimistic".

This experiment measures it directly.  For a grid of memory targets
between 1 page and the program's footprint:

* **WS** picks the window whose MEM lands closest to the target (τ is
  its only knob; the resulting memory is *emergent*, and can overshoot);
* **CD** is driven with ``memory_limit = target`` — the OS grants the
  largest directive request that fits, which is exactly how CD responds
  to contention ("CD is able to dynamically adjust a program's memory
  allocation according to the status of the available memory").  CD can
  undershoot (it takes the next smaller locality) but **never exceeds
  the target**: the bound is hard.

Reported per policy: mean/worst relative error over the target grid and
the fraction of targets *overshot*.  Numerical programs' working sets
jump in large steps (a whole set of columns enters at once), which is
why WS's error spikes on them — [ALMY82]'s finding, reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.experiments.report import format_table
from repro.experiments.runner import artifacts_for
from repro.vm.policies import CDConfig


@dataclass(frozen=True)
class ControllabilityRow:
    program: str
    targets: int
    ws_mean_error: float  # mean relative |MEM - target| / target
    ws_worst_error: float
    ws_overshoots: int  # targets where WS's MEM exceeded the target
    cd_mean_error: float
    cd_worst_error: float
    cd_overshoots: int  # always 0: the memory limit is a hard bound

    @property
    def ws_within_10pct(self) -> bool:
        """The classical '10% de-tuned' claim, evaluated."""
        return self.ws_worst_error <= 0.10


def _relative_errors(achieved: Sequence[float], targets: Sequence[float]) -> np.ndarray:
    achieved = np.asarray(achieved, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    return np.abs(achieved - targets) / targets


def controllability_study(
    names: Optional[Sequence[str]] = None,
    target_count: int = 12,
) -> List[ControllabilityRow]:
    """Measure WS and CD memory-targeting error on each program."""
    from repro.workloads import workload_names

    rows: List[ControllabilityRow] = []
    for name in names or workload_names():
        artifacts = artifacts_for(name)
        footprint = artifacts.lru.max_useful_frames
        targets = np.unique(
            np.round(np.geomspace(2, max(footprint, 3), num=target_count))
        ).astype(float)
        # WS: nearest achievable MEM by tuning τ.
        ws_achieved = [
            artifacts.ws.mem(artifacts.ws.tau_for_mem(t)) for t in targets
        ]
        ws_errors = _relative_errors(ws_achieved, targets)
        ws_over = int(sum(1 for a, t in zip(ws_achieved, targets) if a > t))
        # CD: the OS grants the largest affordable request under the
        # target as a hard memory limit.
        cd_achieved = [
            artifacts.cd_result(
                CDConfig(memory_limit=max(1, int(round(t))))
            ).mem_average
            for t in targets
        ]
        cd_errors = _relative_errors(cd_achieved, targets)
        cd_over = int(sum(1 for a, t in zip(cd_achieved, targets) if a > t))
        rows.append(
            ControllabilityRow(
                program=artifacts.name,
                targets=len(targets),
                ws_mean_error=float(ws_errors.mean()),
                ws_worst_error=float(ws_errors.max()),
                ws_overshoots=ws_over,
                cd_mean_error=float(cd_errors.mean()),
                cd_worst_error=float(cd_errors.max()),
                cd_overshoots=cd_over,
            )
        )
    return rows


def render_controllability(
    rows: Optional[List[ControllabilityRow]] = None,
) -> str:
    rows = rows if rows is not None else controllability_study()
    return format_table(
        [
            "PROGRAM",
            "WS mean err",
            "WS worst",
            "<=10%?",
            "WS over",
            "CD mean err",
            "CD worst",
            "CD over",
        ],
        [
            (
                r.program,
                f"{r.ws_mean_error:.1%}",
                f"{r.ws_worst_error:.1%}",
                "yes" if r.ws_within_10pct else "no",
                r.ws_overshoots,
                f"{r.cd_mean_error:.1%}",
                f"{r.cd_worst_error:.1%}",
                r.cd_overshoots,
            )
            for r in rows
        ],
        title="Controllability: relative error hitting memory targets "
        "(the '10% de-tuned' claim)",
    )
