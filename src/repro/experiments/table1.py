"""Table 1: "The Effect of Executing Different Sets of Directives Under
CD Policy" — MEM, PF, ST for MAIN/MAIN1-3, FDJAC/FDJAC1, TQL1/TQL2.

The paper's observation this table carries: "Less memory allocation
results from executing the directives associated with the inner loops.
Directives at outer levels consume more memory and generate fewer page
faults."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.config import CDVariant, table1_rows
from repro.experiments.report import format_table
from repro.experiments.runner import artifacts_for
from repro.vm.metrics import SimulationResult


@dataclass(frozen=True)
class Table1Row:
    label: str
    mem: float
    page_faults: int
    space_time: float

    @property
    def st_millions(self) -> float:
        return self.space_time / 1e6


def run_variant(variant: CDVariant) -> SimulationResult:
    """Replay one experiment row."""
    artifacts = artifacts_for(variant.workload, with_locks=variant.with_locks)
    return artifacts.cd_result(variant.config)


def generate_table1(variants: Optional[List[CDVariant]] = None) -> List[Table1Row]:
    """Compute every row of Table 1."""
    rows = []
    for variant in variants or table1_rows():
        result = run_variant(variant)
        rows.append(
            Table1Row(
                label=variant.label,
                mem=result.mem_average,
                page_faults=result.page_faults,
                space_time=result.space_time,
            )
        )
    return rows


def render_table1(rows: Optional[List[Table1Row]] = None) -> str:
    rows = rows if rows is not None else generate_table1()
    return format_table(
        ["Program", "MEM", "PF", "ST (10^6)"],
        [(r.label, r.mem, r.page_faults, round(r.st_millions, 3)) for r in rows],
        title="Table 1: The Effect of Executing Different Sets of Directives Under CD Policy",
    )
