"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_value(value) -> str:
    """Render one cell: floats get sensible precision, ints stay exact."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5:
            return f"{value:.3e}"
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table (first column left, rest right)."""
    cells: List[List[str]] = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(values: Sequence[str]) -> str:
        parts = []
        for i, value in enumerate(values):
            if i == 0:
                parts.append(value.ljust(widths[i]))
            else:
                parts.append(value.rjust(widths[i]))
        return "  ".join(parts)

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)
