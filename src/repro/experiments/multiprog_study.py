"""Multiprogramming study: CD vs WS load control across memory sizes.

The experiment the paper defers ("The performance of CD in a
multiprogramming environment is still to be evaluated"): a fixed mix of
benchmark programs run to completion over a range of physical memory
sizes under both managers, reporting makespan, faults, swaps, and
memory utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.runner import artifacts_for
from repro.vm.multiprog import MultiprogSimulator

DEFAULT_MIX = ("TQL", "FDJAC", "HYBRJ")


@dataclass(frozen=True)
class MultiprogRow:
    mix: str
    frames: int
    mode: str
    makespan: int
    faults: int
    swaps: int
    utilization: float
    throughput: float


def multiprog_study(
    mix: Sequence[str] = DEFAULT_MIX,
    frame_counts: Sequence[int] = (96, 64, 48, 32),
    quantum: int = 500,
) -> List[MultiprogRow]:
    """Run the mix under both managers at every memory size."""
    traces = [(name, artifacts_for(name).trace) for name in mix]
    mix_label = "+".join(mix)
    rows: List[MultiprogRow] = []
    for frames in frame_counts:
        for mode in ("cd", "ws"):
            result = MultiprogSimulator(
                traces, total_frames=frames, mode=mode, quantum=quantum
            ).run()
            rows.append(
                MultiprogRow(
                    mix=mix_label,
                    frames=frames,
                    mode=mode.upper(),
                    makespan=result.makespan,
                    faults=result.total_faults,
                    swaps=result.swaps,
                    utilization=result.mem_utilization,
                    throughput=result.throughput,
                )
            )
    return rows


def render_multiprog(rows: Optional[List[MultiprogRow]] = None) -> str:
    rows = rows if rows is not None else multiprog_study()
    return format_table(
        ["frames", "mode", "makespan", "faults", "swaps", "util", "thru"],
        [
            (
                r.frames,
                r.mode,
                r.makespan,
                r.faults,
                r.swaps,
                round(r.utilization, 2),
                round(r.throughput, 3),
            )
            for r in rows
        ],
        title=f"Multiprogramming: {rows[0].mix if rows else '?'} under CD vs WS",
    )
