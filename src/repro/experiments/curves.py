"""Fault and space-time curves: the series underlying Tables 2–4.

The paper's evaluation works from full LRU allocation sweeps and WS
window sweeps ("the window size τ is varied between 1 and some integer
K ≤ R … For LRU the memory allocated to a program is varied between 1
and V").  This module materializes those series — PF(m), MEM(m), ST(m)
for LRU and PF(τ), MEM(τ), ST(τ) for WS, with the CD operating points
overlaid — as plain data rows, renderable as text or CSV for plotting.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.runner import artifacts_for
from repro.vm.policies import CDConfig


@dataclass(frozen=True)
class CurvePoint:
    policy: str
    parameter: float  # frames for LRU, τ for WS, PI cap (−1 = ∞) for CD
    mem: float
    page_faults: int
    space_time: float


@dataclass
class PolicyCurves:
    """All series for one program."""

    program: str
    virtual_pages: int
    points: List[CurvePoint]

    def series(self, policy: str) -> List[CurvePoint]:
        return [p for p in self.points if p.policy == policy]

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(
            ["program", "policy", "parameter", "mem", "page_faults", "space_time"]
        )
        for p in self.points:
            writer.writerow(
                [self.program, p.policy, p.parameter, f"{p.mem:.4f}",
                 p.page_faults, f"{p.space_time:.1f}"]
            )
        return buffer.getvalue()

    def render(self, max_rows_per_policy: int = 12) -> str:
        rows = []
        for policy in ("CD", "LRU", "WS"):
            series = self.series(policy)
            stride = max(1, len(series) // max_rows_per_policy)
            for p in series[::stride]:
                rows.append(
                    (policy, p.parameter, round(p.mem, 2), p.page_faults,
                     p.space_time)
                )
        return format_table(
            ["policy", "param", "MEM", "PF", "ST"],
            rows,
            title=f"{self.program}: policy curves (V = {self.virtual_pages})",
        )


def policy_curves(
    name: str,
    lru_points: int = 24,
    ws_points: int = 24,
    cd_caps: Sequence[Optional[int]] = (None, 3, 2, 1),
) -> PolicyCurves:
    """Compute the LRU, WS, and CD series for one benchmark."""
    artifacts = artifacts_for(name)
    points: List[CurvePoint] = []
    for cap in cd_caps:
        result = artifacts.cd_result(CDConfig(pi_cap=cap))
        points.append(
            CurvePoint(
                policy="CD",
                parameter=-1.0 if cap is None else float(cap),
                mem=result.mem_average,
                page_faults=result.page_faults,
                space_time=result.space_time,
            )
        )
    v = max(artifacts.lru.max_useful_frames, 1)
    stride = max(1, v // lru_points)
    frames_values = sorted(set(list(range(1, v + 1, stride)) + [v]))
    for frames in frames_values:
        result = artifacts.lru.result(frames)
        points.append(
            CurvePoint(
                policy="LRU",
                parameter=float(frames),
                mem=result.mem_average,
                page_faults=result.page_faults,
                space_time=result.space_time,
            )
        )
    for tau in artifacts.ws.default_taus(count=ws_points):
        result = artifacts.ws.result(tau)
        points.append(
            CurvePoint(
                policy="WS",
                parameter=float(tau),
                mem=result.mem_average,
                page_faults=result.page_faults,
                space_time=result.space_time,
            )
        )
    return PolicyCurves(
        program=artifacts.name,
        virtual_pages=artifacts.trace.total_pages,
        points=points,
    )
