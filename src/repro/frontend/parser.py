"""Recursive-descent parser for mini-FORTRAN.

Grammar (statement oriented; one statement per logical line):

    program     ::= [PROGRAM name] {declaration} {statement} END
    declaration ::= DIMENSION declarator {, declarator}
                  | (REAL | INTEGER) [declarator-or-name {, …}]
                  | PARAMETER ( name = expr {, name = expr} )
    statement   ::= assignment | do-loop | if | CONTINUE | STOP | EXIT
    do-loop     ::= DO label var = expr , expr [, expr]  …  label CONTINUE
                  | DO var = expr , expr [, expr] … ENDDO
    if          ::= IF ( expr ) statement
                  | IF ( expr ) THEN … {ELSEIF ( expr ) THEN …} [ELSE …] ENDIF

Expression precedence (loosest to tightest):
``.OR.`` < ``.AND.`` < ``.NOT.`` < comparison < ``+ -`` < ``* /`` <
unary ``+ -`` < ``**`` (right associative) < primary.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.frontend import ast
from repro.frontend.errors import ParseError, SemanticError
from repro.frontend.lexer import Lexer, Token, TokenKind

#: names that terminate a statement-list context
_BLOCK_ENDERS = {"ENDDO", "ENDIF", "ELSE", "ELSEIF", "END"}


class Parser:
    """Parses a token stream produced by :class:`~repro.frontend.lexer.Lexer`."""

    def __init__(self, source: str):
        self.lexer = Lexer(source)
        self.tokens = self.lexer.tokens
        self.pos = 0
        self._next_loop_id = 0

    # -- token helpers ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _expect_op(self, text: str) -> Token:
        tok = self.current
        if not tok.is_op(text):
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.line)
        return self._advance()

    def _expect_name(self) -> Token:
        tok = self.current
        if tok.kind is not TokenKind.NAME:
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.line)
        return self._advance()

    def _expect_newline(self) -> None:
        tok = self.current
        if tok.kind is TokenKind.EOF:
            return
        if tok.kind is not TokenKind.NEWLINE:
            raise ParseError(f"unexpected trailing token {tok.text!r}", tok.line)
        self._advance()

    def _skip_newlines(self) -> None:
        while self.current.kind is TokenKind.NEWLINE:
            self._advance()

    def _statement_label(self) -> Optional[int]:
        """Label attached to the statement starting at the current token."""
        return self.lexer.labels.get(self.pos)

    # -- program ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        """Parse a single-unit source into a :class:`Program`.

        Sources with SUBROUTINE units should go through
        :func:`parse_source`, which also inlines CALLs.
        """
        program, subroutines = self.parse_units()
        if subroutines:
            raise ParseError(
                "source contains SUBROUTINE units; use parse_source()",
                next(iter(subroutines.values())).line,
            )
        return program

    def parse_units(self) -> "Tuple[ast.Program, dict]":
        """Parse the main program followed by any SUBROUTINE units."""
        program = ast.Program()
        self._skip_newlines()
        if self.current.is_name("PROGRAM"):
            self._advance()
            program.name = self._expect_name().text
            self._expect_newline()
        self._parse_declarations(program)
        program.body = self._parse_statements(stop_names=("END",))
        if self.current.is_name("END"):
            self._advance()
        self._check_arrays(program)
        subroutines = {}
        self._skip_newlines()
        while self.current.is_name("SUBROUTINE"):
            sub = self._parse_subroutine()
            if sub.name in subroutines:
                raise ParseError(f"subroutine {sub.name} defined twice", sub.line)
            subroutines[sub.name] = sub
            self._skip_newlines()
        if self.current.kind is not TokenKind.EOF:
            raise ParseError(
                f"unexpected token {self.current.text!r} after END", self.current.line
            )
        return program, subroutines

    def _parse_subroutine(self) -> ast.Subroutine:
        head = self._advance()  # SUBROUTINE
        name = self._expect_name().text
        formals: List[str] = []
        if self.current.is_op("("):
            self._advance()
            if not self.current.is_op(")"):
                formals.append(self._expect_name().text)
                while self.current.is_op(","):
                    self._advance()
                    formals.append(self._expect_name().text)
            self._expect_op(")")
        self._expect_newline()
        if len(set(formals)) != len(formals):
            raise ParseError(f"duplicate formal in SUBROUTINE {name}", head.line)
        sub = ast.Subroutine(name=name, formals=formals, line=head.line)
        # Subroutine declarations reuse the program machinery: Subroutine
        # exposes the same params/arrays/data attributes.
        self._parse_declarations(sub)
        sub.body = self._parse_statements(stop_names=("END",))
        if self.current.is_name("END"):
            self._advance()
        self._check_arrays(sub)
        return sub

    def _check_arrays(self, program: ast.Program) -> None:
        seen = set()
        for decl in program.arrays:
            if decl.name in seen:
                raise SemanticError(f"array {decl.name} declared twice", decl.line)
            seen.add(decl.name)
            if not 1 <= len(decl.dims) <= 2:
                raise SemanticError(
                    f"array {decl.name} has {len(decl.dims)} dimensions; "
                    "only 1-D and 2-D arrays are supported (as in the paper)",
                    decl.line,
                )

    # -- declarations -----------------------------------------------------

    def _parse_declarations(self, program: ast.Program) -> None:
        while True:
            self._skip_newlines()
            tok = self.current
            if tok.is_name("DIMENSION"):
                self._advance()
                self._parse_declarator_list(program, require_dims=True)
                self._expect_newline()
            elif tok.is_name("REAL") or tok.is_name("INTEGER"):
                # Type declarations only matter when they declare arrays;
                # scalar declarations are accepted and ignored.
                nxt = self.tokens[self.pos + 1]
                if nxt.kind is TokenKind.NEWLINE:
                    self._advance()
                    self._expect_newline()
                    continue
                if nxt.kind is TokenKind.NAME:
                    self._advance()
                    self._parse_declarator_list(program, require_dims=False)
                    self._expect_newline()
                else:
                    break
            elif tok.is_name("DATA"):
                self._advance()
                self._parse_data_groups(program)
                self._expect_newline()
            elif tok.is_name("PARAMETER"):
                self._advance()
                self._expect_op("(")
                while True:
                    name = self._expect_name().text
                    self._expect_op("=")
                    value = self.parse_expression()
                    program.params.append(
                        ast.ParamDecl(name=name, value=value, line=tok.line)
                    )
                    if self.current.is_op(","):
                        self._advance()
                        continue
                    break
                self._expect_op(")")
                self._expect_newline()
            else:
                break

    def _parse_declarator_list(self, program: ast.Program, require_dims: bool) -> None:
        while True:
            name_tok = self._expect_name()
            if self.current.is_op("("):
                self._advance()
                dims: List[ast.Expr] = [self.parse_expression()]
                while self.current.is_op(","):
                    self._advance()
                    dims.append(self.parse_expression())
                self._expect_op(")")
                program.arrays.append(
                    ast.ArrayDecl(name=name_tok.text, dims=dims, line=name_tok.line)
                )
            elif require_dims:
                raise ParseError(
                    f"DIMENSION declarator {name_tok.text} needs bounds",
                    name_tok.line,
                )
            if self.current.is_op(","):
                self._advance()
                continue
            break

    def _parse_data_groups(self, program: ast.Program) -> None:
        """``DATA target /values/ [, target /values/]…``"""
        while True:
            name_tok = self._expect_name()
            target: "ast.DataDecl.target"
            if self.current.is_op("("):
                self._advance()
                indices = [self.parse_expression()]
                while self.current.is_op(","):
                    self._advance()
                    indices.append(self.parse_expression())
                self._expect_op(")")
                target = ast.ArrayRef(
                    line=name_tok.line, name=name_tok.text, indices=indices
                )
            else:
                target = name_tok.text
            self._expect_op("/")
            values = self._parse_data_values()
            self._expect_op("/")
            program.data.append(
                ast.DataDecl(target=target, values=values, line=name_tok.line)
            )
            if self.current.is_op(","):
                self._advance()
                continue
            break

    def _parse_data_values(self) -> list:
        """Value list with FORTRAN repeat factors: ``3*0.0, 1.5, -2``."""
        values = []
        while True:
            sign = 1
            if self.current.is_op("-"):
                self._advance()
                sign = -1
            elif self.current.is_op("+"):
                self._advance()
            tok = self.current
            if tok.kind is TokenKind.INT:
                self._advance()
                number = int(tok.text)
                # ``n*value``: an unsigned integer followed by '*' is a
                # repeat factor, not multiplication (DATA lists hold
                # constants only).
                if sign == 1 and self.current.is_op("*"):
                    self._advance()
                    repeat = number
                    if repeat < 1:
                        raise ParseError("repeat factor must be positive", tok.line)
                    values.extend([self._parse_single_data_value()] * repeat)
                else:
                    values.append(sign * number)
            elif tok.kind is TokenKind.REAL:
                self._advance()
                values.append(sign * float(tok.text))
            else:
                raise ParseError(
                    f"expected a constant in DATA list, found {tok.text!r}",
                    tok.line,
                )
            if self.current.is_op(","):
                self._advance()
                continue
            break
        return values

    def _parse_single_data_value(self):
        sign = 1
        if self.current.is_op("-"):
            self._advance()
            sign = -1
        elif self.current.is_op("+"):
            self._advance()
        tok = self.current
        if tok.kind is TokenKind.INT:
            self._advance()
            return sign * int(tok.text)
        if tok.kind is TokenKind.REAL:
            self._advance()
            return sign * float(tok.text)
        raise ParseError(
            f"expected a constant after repeat factor, found {tok.text!r}",
            tok.line,
        )

    # -- statements -------------------------------------------------------

    def _parse_statements(
        self,
        stop_names: Tuple[str, ...] = (),
        stop_label: Optional[int] = None,
    ) -> List[ast.Stmt]:
        """Parse statements until a stopper keyword or the ``stop_label``.

        The stopper itself is *not* consumed, except that a labeled
        terminator statement (``10 CONTINUE``) *is* consumed and included
        when ``stop_label`` matches — mirroring FORTRAN's loop-termination
        rule.
        """
        stmts: List[ast.Stmt] = []
        while True:
            self._skip_newlines()
            tok = self.current
            if tok.kind is TokenKind.EOF:
                if stop_names or stop_label is not None:
                    raise ParseError(
                        "unexpected end of program inside a block", tok.line
                    )
                return stmts
            label = self._statement_label()
            if tok.kind is TokenKind.NAME and tok.text in _BLOCK_ENDERS:
                if tok.text in stop_names:
                    return stmts
                if tok.text == "END" and not stop_names and stop_label is None:
                    return stmts
                raise ParseError(f"unexpected {tok.text}", tok.line)
            stmt = self._parse_statement(label)
            stmts.append(stmt)
            if stop_label is not None and label == stop_label:
                return stmts
            # Shared DO terminators: ``DO 10 I … / DO 10 J … / 10 CONTINUE``
            # ends every enclosing loop that names label 10.
            if (
                stop_label is not None
                and isinstance(stmt, ast.DoLoop)
                and stmt.end_label == stop_label
            ):
                return stmts

    def _parse_statement(self, label: Optional[int]) -> ast.Stmt:
        tok = self.current
        if tok.kind is not TokenKind.NAME:
            raise ParseError(f"expected a statement, found {tok.text!r}", tok.line)
        if tok.text == "DO":
            return self._parse_do(label)
        if tok.text == "IF":
            return self._parse_if(label)
        if tok.text == "CONTINUE":
            self._advance()
            self._expect_newline()
            return ast.Continue(line=tok.line, label=label)
        if tok.text == "STOP":
            self._advance()
            self._expect_newline()
            return ast.Stop(line=tok.line, label=label)
        if tok.text == "EXIT":
            self._advance()
            self._expect_newline()
            return ast.ExitLoop(line=tok.line, label=label)
        if tok.text == "PRINT":
            return self._parse_print(label)
        if tok.text == "WRITE":
            return self._parse_write(label)
        if tok.text == "CALL":
            return self._parse_call(label)
        if tok.text == "RETURN":
            self._advance()
            self._expect_newline()
            return ast.Return(line=tok.line, label=label)
        if tok.text in ("ALLOCATE", "LOCK", "UNLOCK"):
            return self._parse_directive(label)
        return self._parse_assignment(label)

    # -- directive statements ----------------------------------------------

    def _expect_int(self) -> int:
        tok = self.current
        if tok.kind is not TokenKind.INT:
            raise ParseError(f"expected an integer, found {tok.text!r}", tok.line)
        self._advance()
        return int(tok.text)

    def _parse_directive(self, label: Optional[int]) -> ast.DirectiveStmt:
        """One ALLOCATE/LOCK/UNLOCK line, as rendered by
        :func:`repro.directives.render.render_instrumented`."""
        tok = self._advance()  # the directive keyword
        self._expect_op("(")
        stmt: ast.DirectiveStmt
        if tok.text == "ALLOCATE":
            requests: List[Tuple[int, int]] = [self._parse_allocate_request()]
            while self.current.is_name("ELSE"):
                self._advance()
                requests.append(self._parse_allocate_request())
            stmt = ast.AllocateStmt(line=tok.line, label=label, requests=requests)
        elif tok.text == "LOCK":
            pj = self._expect_int()
            arrays: List[str] = []
            while self.current.is_op(","):
                self._advance()
                arrays.append(self._expect_name().text)
            if not arrays:
                raise ParseError("LOCK needs at least one array", tok.line)
            stmt = ast.LockStmt(
                line=tok.line, label=label, priority_index=pj, arrays=arrays
            )
        else:  # UNLOCK
            arrays = [self._expect_name().text]
            while self.current.is_op(","):
                self._advance()
                arrays.append(self._expect_name().text)
            stmt = ast.UnlockStmt(line=tok.line, label=label, arrays=arrays)
        self._expect_op(")")
        self._expect_newline()
        return stmt

    def _parse_allocate_request(self) -> Tuple[int, int]:
        self._expect_op("(")
        pi = self._expect_int()
        self._expect_op(",")
        pages = self._expect_int()
        self._expect_op(")")
        return (pi, pages)

    def _parse_call(self, label: Optional[int]) -> ast.CallStmt:
        tok = self._advance()  # CALL
        name = self._expect_name().text
        args: List[ast.Expr] = []
        if self.current.is_op("("):
            self._advance()
            if not self.current.is_op(")"):
                args.append(self.parse_expression())
                while self.current.is_op(","):
                    self._advance()
                    args.append(self.parse_expression())
            self._expect_op(")")
        self._expect_newline()
        return ast.CallStmt(line=tok.line, label=label, name=name, args=args)

    def _parse_print(self, label: Optional[int]) -> ast.Print:
        tok = self._advance()  # PRINT
        self._expect_op("*")
        items: List[ast.Expr] = []
        if self.current.is_op(","):
            self._advance()
            items.append(self.parse_expression())
            while self.current.is_op(","):
                self._advance()
                items.append(self.parse_expression())
        self._expect_newline()
        return ast.Print(line=tok.line, label=label, items=items)

    def _parse_write(self, label: Optional[int]) -> ast.Print:
        tok = self._advance()  # WRITE
        self._expect_op("(")
        self._expect_op("*")
        self._expect_op(",")
        self._expect_op("*")
        self._expect_op(")")
        items: List[ast.Expr] = []
        if self.current.kind is not TokenKind.NEWLINE:
            items.append(self.parse_expression())
            while self.current.is_op(","):
                self._advance()
                items.append(self.parse_expression())
        self._expect_newline()
        return ast.Print(line=tok.line, label=label, items=items)

    def _parse_assignment(self, label: Optional[int]) -> ast.Assign:
        name_tok = self._expect_name()
        target: ast.Expr
        if self.current.is_op("("):
            self._advance()
            indices = [self.parse_expression()]
            while self.current.is_op(","):
                self._advance()
                indices.append(self.parse_expression())
            self._expect_op(")")
            target = ast.ArrayRef(
                line=name_tok.line, name=name_tok.text, indices=indices
            )
        else:
            target = ast.Var(line=name_tok.line, name=name_tok.text)
        self._expect_op("=")
        expr = self.parse_expression()
        self._expect_newline()
        return ast.Assign(line=name_tok.line, label=label, target=target, expr=expr)

    def _parse_do(self, label: Optional[int]) -> ast.Stmt:
        do_tok = self._advance()  # DO
        loop_id = self._next_loop_id
        self._next_loop_id += 1
        if self.current.is_name("WHILE"):
            self._advance()
            self._expect_op("(")
            cond = self.parse_expression()
            self._expect_op(")")
            self._expect_newline()
            body = self._parse_statements(stop_names=("ENDDO",))
            self._advance()  # ENDDO
            self._expect_newline()
            return ast.WhileLoop(
                line=do_tok.line, label=label, cond=cond, body=body,
                loop_id=loop_id,
            )
        end_label: Optional[int] = None
        if self.current.kind is TokenKind.INT:
            end_label = int(self._advance().text)
        var = self._expect_name().text
        self._expect_op("=")
        start = self.parse_expression()
        self._expect_op(",")
        end = self.parse_expression()
        step: Optional[ast.Expr] = None
        if self.current.is_op(","):
            self._advance()
            step = self.parse_expression()
        self._expect_newline()
        if end_label is not None:
            body = self._parse_statements(stop_label=end_label)
            terminated = bool(body) and (
                body[-1].label == end_label
                or (
                    isinstance(body[-1], ast.DoLoop)
                    and body[-1].end_label == end_label
                )
            )
            if not terminated:
                raise ParseError(
                    f"DO terminator label {end_label} not found", do_tok.line
                )
        else:
            body = self._parse_statements(stop_names=("ENDDO",))
            self._advance()  # ENDDO
            self._expect_newline()
        return ast.DoLoop(
            line=do_tok.line,
            label=label,
            var=var,
            start=start,
            end=end,
            step=step,
            body=body,
            end_label=end_label,
            loop_id=loop_id,
        )

    def _parse_if(self, label: Optional[int]) -> ast.Stmt:
        if_tok = self._advance()  # IF
        self._expect_op("(")
        cond = self.parse_expression()
        self._expect_op(")")
        if self.current.is_name("THEN"):
            self._advance()
            self._expect_newline()
            branches: List[Tuple[Optional[ast.Expr], List[ast.Stmt]]] = []
            body = self._parse_statements(stop_names=("ELSE", "ELSEIF", "ENDIF"))
            branches.append((cond, body))
            while True:
                tok = self.current
                if tok.is_name("ELSEIF"):
                    self._advance()
                    self._expect_op("(")
                    elif_cond = self.parse_expression()
                    self._expect_op(")")
                    if self.current.is_name("THEN"):
                        self._advance()
                    self._expect_newline()
                    body = self._parse_statements(
                        stop_names=("ELSE", "ELSEIF", "ENDIF")
                    )
                    branches.append((elif_cond, body))
                elif tok.is_name("ELSE"):
                    self._advance()
                    self._expect_newline()
                    body = self._parse_statements(stop_names=("ENDIF",))
                    branches.append((None, body))
                elif tok.is_name("ENDIF"):
                    self._advance()
                    self._expect_newline()
                    break
                else:  # pragma: no cover - defended by _parse_statements
                    raise ParseError(f"unexpected {tok.text} in IF block", tok.line)
            return ast.IfBlock(line=if_tok.line, label=label, branches=branches)
        guarded = self._parse_statement(label=None)
        if isinstance(guarded, (ast.DoLoop, ast.WhileLoop, ast.IfBlock)):
            raise ParseError(
                "logical IF may only guard a simple statement", if_tok.line
            )
        return ast.LogicalIf(line=if_tok.line, label=label, cond=cond, stmt=guarded)

    # -- expressions --------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.current.is_op(".OR."):
            tok = self._advance()
            right = self._parse_and()
            left = ast.LogicalOp(line=tok.line, op=".OR.", left=left, right=right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self.current.is_op(".AND."):
            tok = self._advance()
            right = self._parse_not()
            left = ast.LogicalOp(line=tok.line, op=".AND.", left=left, right=right)
        return left

    def _parse_not(self) -> ast.Expr:
        if self.current.is_op(".NOT."):
            tok = self._advance()
            operand = self._parse_not()
            return ast.UnaryOp(line=tok.line, op=".NOT.", operand=operand)
        return self._parse_comparison()

    _COMPARE_OPS = ("<", "<=", ">", ">=", "==", "/=")

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        tok = self.current
        if tok.kind is TokenKind.OP and tok.text in self._COMPARE_OPS:
            self._advance()
            right = self._parse_additive()
            return ast.Compare(line=tok.line, op=tok.text, left=left, right=right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self.current.kind is TokenKind.OP and self.current.text in ("+", "-"):
            tok = self._advance()
            right = self._parse_multiplicative()
            left = ast.BinOp(line=tok.line, op=tok.text, left=left, right=right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self.current.kind is TokenKind.OP and self.current.text in ("*", "/"):
            tok = self._advance()
            right = self._parse_unary()
            left = ast.BinOp(line=tok.line, op=tok.text, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expr:
        tok = self.current
        if tok.kind is TokenKind.OP and tok.text in ("+", "-"):
            self._advance()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            return ast.UnaryOp(line=tok.line, op="-", operand=operand)
        return self._parse_power()

    def _parse_power(self) -> ast.Expr:
        base = self._parse_primary()
        if self.current.is_op("**"):
            tok = self._advance()
            # ** is right-associative and binds tighter than unary minus
            # on its right operand, matching FORTRAN.
            exponent = self._parse_unary()
            return ast.BinOp(line=tok.line, op="**", left=base, right=exponent)
        return base

    def _parse_primary(self) -> ast.Expr:
        tok = self.current
        if tok.kind is TokenKind.INT:
            self._advance()
            return ast.Num(line=tok.line, value=int(tok.text))
        if tok.kind is TokenKind.REAL:
            self._advance()
            return ast.Num(line=tok.line, value=float(tok.text))
        if tok.is_op(".TRUE.") or tok.is_op(".FALSE."):
            self._advance()
            return ast.LogicalLit(line=tok.line, value=tok.text == ".TRUE.")
        if tok.is_op("("):
            self._advance()
            inner = self.parse_expression()
            self._expect_op(")")
            return inner
        if tok.kind is TokenKind.NAME:
            self._advance()
            if self.current.is_op("("):
                self._advance()
                args = []
                if not self.current.is_op(")"):
                    args.append(self.parse_expression())
                    while self.current.is_op(","):
                        self._advance()
                        args.append(self.parse_expression())
                self._expect_op(")")
                # Array reference vs intrinsic call is resolved later by the
                # symbol table; the parser emits a Call and the resolver
                # rewrites calls whose name is a declared array.
                return ast.Call(line=tok.line, name=tok.text, args=args)
            return ast.Var(line=tok.line, name=tok.text)
        raise ParseError(f"unexpected token {tok.text!r} in expression", tok.line)


def _resolve_array_refs(program: ast.Program) -> None:
    """Rewrite :class:`Call` nodes whose name is a declared array into
    :class:`ArrayRef` nodes (FORTRAN's ``A(I)`` syntax is ambiguous until
    declarations are known)."""
    array_names = {decl.name for decl in program.arrays}

    def fix(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Call):
            args = [fix(a) for a in expr.args]
            if expr.name in array_names:
                return ast.ArrayRef(line=expr.line, name=expr.name, indices=args)
            expr.args = args
            return expr
        if isinstance(expr, (ast.BinOp, ast.Compare, ast.LogicalOp)):
            expr.left = fix(expr.left)
            expr.right = fix(expr.right)
            return expr
        if isinstance(expr, ast.UnaryOp):
            expr.operand = fix(expr.operand)
            return expr
        if isinstance(expr, ast.ArrayRef):
            expr.indices = [fix(ix) for ix in expr.indices]
            return expr
        return expr

    def fix_stmt(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            stmt.target = fix(stmt.target)
            stmt.expr = fix(stmt.expr)
        elif isinstance(stmt, ast.DoLoop):
            stmt.start = fix(stmt.start)
            stmt.end = fix(stmt.end)
            if stmt.step is not None:
                stmt.step = fix(stmt.step)
            for inner in stmt.body:
                fix_stmt(inner)
        elif isinstance(stmt, ast.IfBlock):
            stmt.branches = [
                (fix(cond) if cond is not None else None, body)
                for cond, body in stmt.branches
            ]
            for _cond, body in stmt.branches:
                for inner in body:
                    fix_stmt(inner)
        elif isinstance(stmt, ast.LogicalIf):
            stmt.cond = fix(stmt.cond)
            fix_stmt(stmt.stmt)
        elif isinstance(stmt, ast.Print):
            stmt.items = [fix(item) for item in stmt.items]
        elif isinstance(stmt, ast.WhileLoop):
            stmt.cond = fix(stmt.cond)
            for inner in stmt.body:
                fix_stmt(inner)

    for stmt in program.body:
        fix_stmt(stmt)
    for decl in program.arrays:
        decl.dims = [fix(d) for d in decl.dims]
    for param in program.params:
        param.value = fix(param.value)


def _renumber_loops(program: ast.Program) -> None:
    """Assign fresh pre-order loop_ids (inlining duplicates bodies, so
    parse-time ids are no longer unique)."""
    next_id = 0
    for stmt in program.walk_statements():
        if isinstance(stmt, (ast.DoLoop, ast.WhileLoop)):
            stmt.loop_id = next_id
            next_id += 1


def parse_source(source: str, allow_directives: bool = False) -> ast.Program:
    """Parse mini-FORTRAN source text into a resolved :class:`Program`.

    Multi-unit sources (a main program plus SUBROUTINE units) are
    flattened: every CALL is replaced by the callee's body with formals
    substituted and locals renamed (see :mod:`repro.frontend.inline`).

    Directive statements (ALLOCATE/LOCK/UNLOCK lines from an
    instrumented rendering) are rejected unless ``allow_directives`` is
    set: the executable pipeline carries directives out-of-band in an
    :class:`~repro.directives.model.InstrumentationPlan`, so callers
    holding an instrumented source must go through
    :func:`repro.directives.parse.parse_instrumented` instead.
    """
    program, subroutines = Parser(source).parse_units()
    if subroutines or any(
        isinstance(s, ast.CallStmt) for s in program.walk_statements()
    ):
        from repro.frontend.inline import inline_program

        program = inline_program(program, subroutines)
        _renumber_loops(program)
    if not allow_directives:
        for stmt in program.walk_statements():
            if isinstance(stmt, ast.DirectiveStmt):
                raise SemanticError(
                    "source contains memory directives; parse it with "
                    "repro.directives.parse.parse_instrumented()",
                    stmt.line,
                )
    _resolve_array_refs(program)
    return program
