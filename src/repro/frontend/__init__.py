"""Mini-FORTRAN frontend.

The paper analyzes FORTRAN numerical programs at the source level.  This
package implements a small FORTRAN-like language ("mini-FORTRAN") that is
rich enough to express the nine benchmark kernels of the paper's
evaluation: ``DIMENSION``/``PARAMETER`` declarations, labeled ``DO`` loops,
block ``DO``/``ENDDO`` loops, assignments, arithmetic and logical
expressions, ``IF`` statements, and one- or two-dimensional array
references (the paper restricts itself to arrays of at most two
dimensions).

Public entry points:

``parse_source(text)``
    Parse a program and return a :class:`repro.frontend.ast.Program`.

``SymbolTable.from_program(program)``
    Resolve declarations into array shapes and named constants.
"""

from repro.frontend.ast import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Compare,
    Continue,
    DoLoop,
    IfBlock,
    LogicalIf,
    LogicalOp,
    Num,
    Program,
    Stop,
    UnaryOp,
    Var,
)
from repro.frontend.errors import FrontendError, LexError, ParseError, SemanticError
from repro.frontend.lexer import Lexer, Token, TokenKind, tokenize_line
from repro.frontend.parser import Parser, parse_source
from repro.frontend.symbols import ArrayInfo, SymbolTable

__all__ = [
    "ArrayDecl",
    "ArrayInfo",
    "ArrayRef",
    "Assign",
    "BinOp",
    "Call",
    "Compare",
    "Continue",
    "DoLoop",
    "FrontendError",
    "IfBlock",
    "LexError",
    "Lexer",
    "LogicalIf",
    "LogicalOp",
    "Num",
    "ParseError",
    "Parser",
    "Program",
    "SemanticError",
    "Stop",
    "SymbolTable",
    "Token",
    "TokenKind",
    "UnaryOp",
    "Var",
    "parse_source",
    "tokenize_line",
]
