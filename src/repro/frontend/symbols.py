"""Symbol resolution for mini-FORTRAN programs.

The symbol table resolves ``PARAMETER`` constants and array shapes to
concrete integers.  Array bounds must be compile-time constants (literals,
parameters, or arithmetic over them), as in the paper: "Array sizes are
given explicitly in the dimension declaration statements."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.frontend import ast
from repro.frontend.errors import SemanticError

Number = Union[int, float]


@dataclass(frozen=True)
class ArrayInfo:
    """Resolved shape of a declared array.

    ``dims`` is ``(M,)`` for vectors and ``(M, N)`` for matrices, in
    declaration order (rows, columns); storage is column major.
    """

    name: str
    dims: Tuple[int, ...]

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def rows(self) -> int:
        return self.dims[0]

    @property
    def columns(self) -> int:
        """Number of columns; 1 for vectors (the paper's ``N = 1``)."""
        return self.dims[1] if self.rank == 2 else 1

    @property
    def element_count(self) -> int:
        return self.rows * self.columns

    def linear_index(self, indices: Tuple[int, ...]) -> int:
        """Zero-based column-major linear index of a (1-based) element.

        Raises :class:`SemanticError` on rank mismatch or out-of-bounds
        access — faithful interpretation matters because the page trace is
        derived from these offsets.
        """
        if len(indices) != self.rank:
            raise SemanticError(
                f"array {self.name} has rank {self.rank}, indexed with "
                f"{len(indices)} subscripts"
            )
        i = indices[0]
        if not 1 <= i <= self.rows:
            raise SemanticError(
                f"index {i} out of bounds for {self.name}({self.dims})"
            )
        if self.rank == 1:
            return i - 1
        j = indices[1]
        if not 1 <= j <= self.columns:
            raise SemanticError(
                f"column index {j} out of bounds for {self.name}({self.dims})"
            )
        return (j - 1) * self.rows + (i - 1)


def eval_const_expr(expr: ast.Expr, env: Dict[str, Number]) -> Number:
    """Evaluate a compile-time constant expression.

    ``env`` supplies PARAMETER bindings.  Raises :class:`SemanticError`
    for anything not statically evaluable (array refs, unknown names,
    function calls).
    """
    if isinstance(expr, ast.Num):
        return expr.value
    if isinstance(expr, ast.Var):
        if expr.name in env:
            return env[expr.name]
        raise SemanticError(f"{expr.name} is not a constant", expr.line)
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        return -eval_const_expr(expr.operand, env)
    if isinstance(expr, ast.BinOp):
        left = eval_const_expr(expr.left, env)
        right = eval_const_expr(expr.right, env)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            if isinstance(left, int) and isinstance(right, int):
                return left // right
            return left / right
        if expr.op == "**":
            return left**right
    raise SemanticError("expression is not a compile-time constant", expr.line)


class SymbolTable:
    """Resolved parameters and array shapes for one program."""

    def __init__(self) -> None:
        self.params: Dict[str, Number] = {}
        self.arrays: Dict[str, ArrayInfo] = {}

    @classmethod
    def from_program(cls, program: ast.Program) -> "SymbolTable":
        table = cls()
        for param in program.params:
            if param.name in table.params:
                raise SemanticError(
                    f"parameter {param.name} bound twice", param.line
                )
            table.params[param.name] = eval_const_expr(param.value, table.params)
        for decl in program.arrays:
            dims = []
            for dim_expr in decl.dims:
                value = eval_const_expr(dim_expr, table.params)
                if not isinstance(value, int) or value < 1:
                    raise SemanticError(
                        f"array {decl.name} has non-positive or non-integer "
                        f"bound {value!r}",
                        decl.line,
                    )
                dims.append(value)
            table.arrays[decl.name] = ArrayInfo(name=decl.name, dims=tuple(dims))
        table._validate_references(program)
        table._validate_data(program)
        return table

    def _validate_data(self, program: ast.Program) -> None:
        """Check DATA groups: known arrays, matching value counts."""
        for group in program.data:
            if isinstance(group.target, str):
                info = self.arrays.get(group.target)
                if info is None:
                    raise SemanticError(
                        f"DATA names undeclared array {group.target}", group.line
                    )
                if len(group.values) != info.element_count:
                    raise SemanticError(
                        f"DATA for {group.target} has {len(group.values)} "
                        f"values; the array holds {info.element_count}",
                        group.line,
                    )
            else:
                ref = group.target
                info = self.arrays.get(ref.name)
                if info is None:
                    raise SemanticError(
                        f"DATA names undeclared array {ref.name}", group.line
                    )
                indices = tuple(
                    int(eval_const_expr(ix, self.params)) for ix in ref.indices
                )
                info.linear_index(indices)  # bounds check
                if len(group.values) != 1:
                    raise SemanticError(
                        f"DATA for element {ref.name} needs exactly one value",
                        group.line,
                    )

    def _validate_references(self, program: ast.Program) -> None:
        """Reject references to undeclared arrays and rank mismatches."""
        for stmt in program.walk_statements():
            for ref in ast.statement_array_refs(stmt):
                info = self.arrays.get(ref.name)
                if info is None:  # pragma: no cover - resolver guarantees this
                    raise SemanticError(
                        f"reference to undeclared array {ref.name}", ref.line
                    )
                if len(ref.indices) != info.rank:
                    raise SemanticError(
                        f"array {ref.name} has rank {info.rank} but is "
                        f"indexed with {len(ref.indices)} subscripts",
                        ref.line,
                    )

    @property
    def total_virtual_elements(self) -> int:
        """Total number of array elements across all declared arrays."""
        return sum(info.element_count for info in self.arrays.values())

    def array_order(self) -> List[str]:
        """Array names in declaration order (defines the address layout)."""
        return list(self.arrays.keys())
