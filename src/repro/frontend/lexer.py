"""Tokenizer for the mini-FORTRAN language.

The lexer is line-oriented, matching FORTRAN's statement-per-line model:

* a line whose first column is ``C``, ``c`` or ``*`` is a comment;
* ``!`` begins a trailing comment anywhere on a line;
* an integer at the start of a line is a statement *label*;
* a line ending in ``&`` continues onto the next line;
* keywords and identifiers are case-insensitive (normalized to upper
  case);
* FORTRAN dotted operators (``.LT.`` ``.AND.`` …) and their modern
  spellings (``<`` ``<=`` …) are both accepted and normalized.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.frontend.errors import LexError


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    NAME = "name"  # identifiers and keywords
    INT = "int"
    REAL = "real"
    OP = "op"  # punctuation and operators, normalized text
    NEWLINE = "newline"  # statement separator (end of logical line)
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``text`` is the normalized spelling: upper-case for names, canonical
    form for operators (``.LT.`` becomes ``<``, ``.EQ.`` becomes ``==`` …).
    """

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_name(self, text: str) -> bool:
        """True when this token is the (case-normalized) identifier ``text``."""
        return self.kind is TokenKind.NAME and self.text == text

    def is_op(self, text: str) -> bool:
        """True when this token is the operator ``text``."""
        return self.kind is TokenKind.OP and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, line={self.line})"


# Dotted FORTRAN operators, mapped to their canonical spelling.
_DOTTED_OPS = {
    ".LT.": "<",
    ".LE.": "<=",
    ".GT.": ">",
    ".GE.": ">=",
    ".EQ.": "==",
    ".NE.": "/=",
    ".AND.": ".AND.",
    ".OR.": ".OR.",
    ".NOT.": ".NOT.",
    ".TRUE.": ".TRUE.",
    ".FALSE.": ".FALSE.",
}

# Multi-character symbolic operators must be matched before single chars.
_MULTI_OPS = ("**", "<=", ">=", "==", "/=", "//")
_SINGLE_OPS = "+-*/(),=<>:"

_NAME_RE = re.compile(r"[A-Za-z][A-Za-z0-9_]*")
# A numeric literal: integer or real with optional fraction/exponent.
# The leading sign is handled by the parser as a unary operator.
_NUM_RE = re.compile(
    r"(\d+\.\d*([EeDd][+-]?\d+)?)"  # 1.  1.5  1.5E3
    r"|(\.\d+([EeDd][+-]?\d+)?)"  # .5  .5E-2
    r"|(\d+[EeDd][+-]?\d+)"  # 1E3
    r"|(\d+)"  # 42
)
_DOTTED_RE = re.compile(r"\.[A-Za-z]+\.")


def _is_real_literal(text: str) -> bool:
    return "." in text or "E" in text.upper() or "D" in text.upper()


def tokenize_line(line: str, lineno: int) -> Tuple[Optional[int], List[Token]]:
    """Tokenize one logical source line.

    Returns ``(label, tokens)`` where ``label`` is the numeric statement
    label if the line begins with one, else ``None``.  Comment lines yield
    ``(None, [])``.
    """
    # Fixed-form comment rule, adapted: '*' in column 1 always comments;
    # 'C' in column 1 comments only when not beginning a word ("C fill"
    # is a comment, "CALL SAXPY(...)" is a statement).  An unindented
    # assignment to a scalar named C ("C = 1.0") must be indented to
    # avoid the comment rule, as in fixed-form FORTRAN itself.
    if line and line[0] == "*":
        return None, []
    if line and line[0] in ("C", "c") and (len(line) == 1 or not line[1].isalnum()):
        return None, []
    # Strip trailing comment introduced by '!'.
    bang = line.find("!")
    if bang >= 0:
        line = line[:bang]
    tokens: List[Token] = []
    pos = 0
    n = len(line)
    label: Optional[int] = None
    # Leading statement label: an integer before the first keyword.
    stripped = line.lstrip()
    lead = len(line) - len(stripped)
    m = re.match(r"\d+", stripped)
    if m and not _NUM_RE.match(stripped[: m.end() + 1] + " ").group(0).count("."):
        nxt = stripped[m.end() : m.end() + 1]
        if nxt in ("", " ", "\t"):
            label = int(m.group(0))
            pos = lead + m.end()
    while pos < n:
        ch = line[pos]
        if ch in (" ", "\t", "\r"):
            pos += 1
            continue
        col = pos + 1
        if ch == ".":
            m = _DOTTED_RE.match(line, pos)
            if m:
                word = m.group(0).upper()
                if word in _DOTTED_OPS:
                    tokens.append(Token(TokenKind.OP, _DOTTED_OPS[word], lineno, col))
                    pos = m.end()
                    continue
                raise LexError(f"unknown dotted operator {m.group(0)!r}", lineno)
        m = _NUM_RE.match(line, pos)
        if m and (ch.isdigit() or ch == "."):
            text = m.group(0).upper().replace("D", "E")
            kind = TokenKind.REAL if _is_real_literal(text) else TokenKind.INT
            tokens.append(Token(kind, text, lineno, col))
            pos = m.end()
            continue
        m = _NAME_RE.match(line, pos)
        if m:
            tokens.append(Token(TokenKind.NAME, m.group(0).upper(), lineno, col))
            pos = m.end()
            continue
        matched_multi = False
        for op in _MULTI_OPS:
            if line.startswith(op, pos):
                tokens.append(Token(TokenKind.OP, op, lineno, col))
                pos += len(op)
                matched_multi = True
                break
        if matched_multi:
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token(TokenKind.OP, ch, lineno, col))
            pos += 1
            continue
        raise LexError(f"unexpected character {ch!r}", lineno)
    return label, tokens


class Lexer:
    """Tokenizes a whole program into a flat token stream.

    Each logical line (after joining ``&`` continuations) contributes its
    tokens followed by a ``NEWLINE`` token; the stream ends with ``EOF``.
    Statement labels are returned out-of-band via :attr:`labels`, a map
    from the index of the line's first token to the label value.
    """

    def __init__(self, source: str):
        self.source = source
        self.tokens: List[Token] = []
        #: map from token index (of the first token of a labeled statement)
        #: to the integer statement label
        self.labels = {}
        self._scan()

    def _logical_lines(self) -> Iterator[Tuple[int, str]]:
        """Yield ``(lineno, text)`` pairs after joining continuations."""
        pending = ""
        pending_line = 0
        for i, raw in enumerate(self.source.splitlines(), start=1):
            line = raw.rstrip()
            if pending:
                line = pending + " " + line.lstrip()
                lineno = pending_line
            else:
                lineno = i
            if line.endswith("&"):
                pending = line[:-1].rstrip()
                pending_line = lineno
                continue
            pending = ""
            yield lineno, line
        if pending:
            yield pending_line, pending

    def _scan(self) -> None:
        for lineno, line in self._logical_lines():
            if not line.strip():
                continue
            label, toks = tokenize_line(line, lineno)
            if not toks:
                if label is not None:
                    # A bare labeled line acts as a labeled CONTINUE.
                    toks = [Token(TokenKind.NAME, "CONTINUE", lineno, 1)]
                else:
                    continue
            if label is not None:
                self.labels[len(self.tokens)] = label
            self.tokens.extend(toks)
            self.tokens.append(Token(TokenKind.NEWLINE, "\n", lineno, len(line) + 1))
        last_line = self.tokens[-1].line if self.tokens else 1
        self.tokens.append(Token(TokenKind.EOF, "", last_line, 1))
