"""Abstract syntax tree for mini-FORTRAN programs.

The node set is intentionally small: the paper's source-level analysis
cares about loop structure, array declarations, and array index
expressions, and the trace-generating interpreter additionally needs
assignments, conditionals and arithmetic.

Every node carries its 1-based source ``line`` so analysis results,
inserted directives, and error messages can point back at the source.
``DoLoop`` nodes additionally carry a ``loop_id`` that is unique within a
program and stable across analysis passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expression nodes."""

    line: int = 0


@dataclass
class Num(Expr):
    """Numeric literal.  ``value`` is int or float."""

    value: Union[int, float] = 0


@dataclass
class Var(Expr):
    """Scalar variable reference (or loop index)."""

    name: str = ""


@dataclass
class ArrayRef(Expr):
    """Reference to an element of a declared array.

    ``indices`` has one entry for a vector, two for a matrix; the paper
    considers at most two-dimensional arrays.
    """

    name: str = ""
    indices: List[Expr] = field(default_factory=list)


@dataclass
class BinOp(Expr):
    """Arithmetic binary operation: ``+ - * / **``."""

    op: str = "+"
    left: Expr = None
    right: Expr = None


@dataclass
class UnaryOp(Expr):
    """Unary ``-`` / ``+`` / ``.NOT.``."""

    op: str = "-"
    operand: Expr = None


@dataclass
class Compare(Expr):
    """Relational comparison: ``< <= > >= == /=``."""

    op: str = "<"
    left: Expr = None
    right: Expr = None


@dataclass
class LogicalOp(Expr):
    """Logical connective ``.AND.`` / ``.OR.``."""

    op: str = ".AND."
    left: Expr = None
    right: Expr = None


@dataclass
class LogicalLit(Expr):
    """``.TRUE.`` or ``.FALSE.``."""

    value: bool = True


@dataclass
class Call(Expr):
    """Intrinsic function call such as ``SQRT(X)`` or ``MOD(I, 2)``."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statement nodes."""

    line: int = 0
    label: Optional[int] = None


@dataclass
class Assign(Stmt):
    """Assignment to a scalar or an array element."""

    target: Union[Var, ArrayRef] = None
    expr: Expr = None


@dataclass
class DoLoop(Stmt):
    """A ``DO`` loop: labeled (``DO 10 I = …`` / ``10 CONTINUE``) or block
    form (``DO I = …`` / ``ENDDO``)."""

    var: str = ""
    start: Expr = None
    end: Expr = None
    step: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)
    #: label of the terminating statement for labeled DO loops
    end_label: Optional[int] = None
    #: unique, stable identifier assigned by the parser (pre-order)
    loop_id: int = -1


@dataclass
class WhileLoop(Stmt):
    """``DO WHILE (cond) … ENDDO`` — condition-controlled iteration.

    The condition re-evaluates before every iteration, so array
    references in it belong to the loop's own level (unlike ``DO``
    bounds, which evaluate once at entry).
    """

    cond: Expr = None
    body: List[Stmt] = field(default_factory=list)
    #: unique, stable identifier shared with DoLoop's numbering
    loop_id: int = -1


@dataclass
class IfBlock(Stmt):
    """Block ``IF (cond) THEN … [ELSEIF …] [ELSE …] ENDIF``.

    ``branches`` is an ordered list of ``(condition, body)`` pairs; the
    ``ELSE`` branch, when present, has condition ``None``.
    """

    branches: List[Tuple[Optional[Expr], List[Stmt]]] = field(default_factory=list)


@dataclass
class LogicalIf(Stmt):
    """One-line logical ``IF (cond) statement``."""

    cond: Expr = None
    stmt: Stmt = None


@dataclass
class Continue(Stmt):
    """A ``CONTINUE`` statement (possibly a labeled loop terminator)."""


@dataclass
class Stop(Stmt):
    """``STOP`` — terminates execution."""


@dataclass
class CallStmt(Stmt):
    """``CALL name(args)`` — subroutine invocation.

    Only present between parsing and inline expansion: the inliner
    (:mod:`repro.frontend.inline`) replaces every CallStmt with the
    callee's body, so downstream passes never see one.
    """

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Return(Stmt):
    """``RETURN`` — leave the enclosing subroutine.

    Accepted only as the final statement of a subroutine body (the
    inliner has no jump target for early returns).
    """


@dataclass
class ExitLoop(Stmt):
    """``EXIT`` — leave the innermost enclosing loop (modern extension)."""


@dataclass
class DirectiveStmt(Stmt):
    """Base class for memory-directive statements.

    Directive statements appear only in *instrumented* sources (the
    Figure-5c rendering produced by
    :func:`repro.directives.render.render_instrumented`).  The plain
    :func:`~repro.frontend.parser.parse_source` rejects them;
    :func:`repro.directives.parse.parse_instrumented` extracts them into
    an :class:`~repro.directives.model.InstrumentationPlan` so the
    executable program the rest of the pipeline sees never contains one.
    """


@dataclass
class AllocateStmt(DirectiveStmt):
    """``ALLOCATE ((PI1,X1) else (PI2,X2) else …)`` — one request chain,
    outermost-first, as raw ``(priority_index, pages)`` pairs."""

    requests: List[Tuple[int, int]] = field(default_factory=list)


@dataclass
class LockStmt(DirectiveStmt):
    """``LOCK (PJ, Y1, Y2, …)`` — pin the named arrays' current pages."""

    priority_index: int = 0
    arrays: List[str] = field(default_factory=list)


@dataclass
class UnlockStmt(DirectiveStmt):
    """``UNLOCK (Y1, Y2, …)`` — release every pin on the named arrays."""

    arrays: List[str] = field(default_factory=list)


@dataclass
class Print(Stmt):
    """``PRINT *, items`` / ``WRITE(*,*) items`` — list-directed output.

    Output itself is discarded by the interpreter, but the items are
    evaluated: printing ``A(I)`` references a page, exactly as in the
    traced originals.
    """

    items: List[Expr] = field(default_factory=list)


@dataclass
class ArrayDecl:
    """One array declarator from a DIMENSION/REAL/INTEGER statement."""

    name: str = ""
    dims: List[Expr] = field(default_factory=list)
    line: int = 0


@dataclass
class ParamDecl:
    """One ``PARAMETER (NAME = constant-expr)`` binding."""

    name: str = ""
    value: Expr = None
    line: int = 0


@dataclass
class DataDecl:
    """One ``DATA target /values/`` group (load-time initialization).

    ``target`` is an array name (whole-array fill) or an element
    reference with constant subscripts; ``values`` are the constants
    after ``n*value`` repeat expansion.  Load-time initialization emits
    no page references, consistent with the paper's "constants …
    permanently resident" assumption.
    """

    target: Union[str, "ArrayRef"] = ""
    values: List[Union[int, float]] = field(default_factory=list)
    line: int = 0


@dataclass
class Subroutine:
    """A ``SUBROUTINE name(formals) … END`` unit, pre-inlining."""

    name: str = ""
    formals: List[str] = field(default_factory=list)
    params: List[ParamDecl] = field(default_factory=list)
    arrays: List[ArrayDecl] = field(default_factory=list)
    data: List[DataDecl] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    line: int = 0

    def formal_array_names(self) -> List[str]:
        """Formals that carry a DIMENSION declaration (array arguments)."""
        declared = {decl.name for decl in self.arrays}
        return [f for f in self.formals if f in declared]


@dataclass
class Program:
    """A complete mini-FORTRAN program unit."""

    name: str = "MAIN"
    params: List[ParamDecl] = field(default_factory=list)
    arrays: List[ArrayDecl] = field(default_factory=list)
    data: List[DataDecl] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)

    def walk_statements(self) -> Iterator[Stmt]:
        """Yield every statement in the program, depth first, pre-order."""
        yield from _walk(self.body)

    def loops(self) -> Iterator[DoLoop]:
        """Yield every DO loop in the program in pre-order."""
        for stmt in self.walk_statements():
            if isinstance(stmt, DoLoop):
                yield stmt


def _walk(stmts: List[Stmt]) -> Iterator[Stmt]:
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, (DoLoop, WhileLoop)):
            yield from _walk(stmt.body)
        elif isinstance(stmt, IfBlock):
            for _cond, body in stmt.branches:
                yield from _walk(body)
        elif isinstance(stmt, LogicalIf):
            yield from _walk([stmt.stmt])


def walk_expressions(node: Union[Stmt, Expr]) -> Iterator[Expr]:
    """Yield every expression node reachable from ``node`` (inclusive for
    expression inputs), pre-order.

    For statements, yields the expressions they directly contain but does
    not descend into nested statements — pair with
    :func:`Program.walk_statements` for whole-program traversals.
    """
    if isinstance(node, Expr):
        yield node
        if isinstance(node, ArrayRef):
            for ix in node.indices:
                yield from walk_expressions(ix)
        elif isinstance(node, (BinOp, Compare, LogicalOp)):
            yield from walk_expressions(node.left)
            yield from walk_expressions(node.right)
        elif isinstance(node, UnaryOp):
            yield from walk_expressions(node.operand)
        elif isinstance(node, Call):
            for arg in node.args:
                yield from walk_expressions(arg)
        return
    if isinstance(node, Assign):
        yield from walk_expressions(node.target)
        yield from walk_expressions(node.expr)
    elif isinstance(node, DoLoop):
        yield from walk_expressions(node.start)
        yield from walk_expressions(node.end)
        if node.step is not None:
            yield from walk_expressions(node.step)
    elif isinstance(node, WhileLoop):
        yield from walk_expressions(node.cond)
    elif isinstance(node, IfBlock):
        for cond, _body in node.branches:
            if cond is not None:
                yield from walk_expressions(cond)
    elif isinstance(node, LogicalIf):
        yield from walk_expressions(node.cond)
    elif isinstance(node, Print):
        for item in node.items:
            yield from walk_expressions(item)
    elif isinstance(node, CallStmt):
        for arg in node.args:
            yield from walk_expressions(arg)


def statement_array_refs(stmt: Stmt) -> Iterator[ArrayRef]:
    """Yield the :class:`ArrayRef` expressions directly inside ``stmt``.

    Does not descend into nested statements of a DoLoop/IfBlock (their
    own statements are visited separately during program walks); for a
    LogicalIf both the condition and the guarded statement are included.
    """
    for expr in walk_expressions(stmt):
        if isinstance(expr, ArrayRef):
            yield expr
    if isinstance(stmt, LogicalIf):
        yield from statement_array_refs(stmt.stmt)
