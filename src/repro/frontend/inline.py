"""CALL inlining: flattening multi-unit sources into one program.

The paper analyzes whole numerical routines; real package code splits
them across subroutines (FDJAC and HYBRJ are MINPACK subroutines, TQL an
EISPACK one).  This module lets the mini language express that structure
and reduces it to the single-unit form the analysis pipeline consumes:
every ``CALL`` is replaced by the callee's body with

* **array formals** bound by reference to the caller's arrays (the
  actual must be a bare array name with the same declared shape);
* **scalar formals** bound by reference when the actual is a scalar
  variable, by value (a fresh temporary) when it is any other
  expression — writes into by-value formals do not propagate back,
  which is the documented restriction;
* **locals** (scalars, arrays, PARAMETERs, DATA) renamed with a fresh
  ``Z<n>_`` prefix and hoisted into the caller;
* **labels** renumbered per expansion (two inlined copies of a labeled
  DO loop must not share terminator labels);
* a trailing ``RETURN`` stripped (early RETURN is rejected: the inliner
  has no jump target for it).

Recursion (direct or mutual) is rejected; nested calls inline
recursively.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Sequence, Set, Tuple

from repro.frontend import ast
from repro.frontend.errors import FrontendError
from repro.frontend.symbols import eval_const_expr


class InlineError(FrontendError):
    """Raised when a CALL cannot be expanded."""


class _NameAllocator:
    """Fresh identifiers and labels, unique across the whole program."""

    def __init__(self, program: ast.Program, subs: Dict[str, ast.Subroutine]):
        self.used_names: Set[str] = set()
        self.max_label = 0
        self._scan_unit(program)
        for sub in subs.values():
            self._scan_unit(sub)
        self._counter = 0

    def _scan_unit(self, unit) -> None:
        for decl in unit.arrays:
            self.used_names.add(decl.name)
        for param in unit.params:
            self.used_names.add(param.name)
        for stmt in _walk_all(unit.body):
            if stmt.label is not None:
                self.max_label = max(self.max_label, stmt.label)
            if isinstance(stmt, ast.DoLoop):
                self.used_names.add(stmt.var)
                if stmt.end_label is not None:
                    self.max_label = max(self.max_label, stmt.end_label)
            for expr in _stmt_exprs(stmt):
                for node in ast.walk_expressions(expr):
                    if isinstance(node, ast.Var):
                        self.used_names.add(node.name)
                    elif isinstance(node, (ast.Call, ast.ArrayRef)):
                        self.used_names.add(node.name)

    def fresh_name(self, base: str) -> str:
        while True:
            self._counter += 1
            candidate = f"Z{self._counter}_{base}"
            if candidate not in self.used_names:
                self.used_names.add(candidate)
                return candidate

    def fresh_label(self) -> int:
        self.max_label += 10
        return self.max_label


def _walk_all(stmts: Sequence[ast.Stmt]):
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, (ast.DoLoop, ast.WhileLoop)):
            yield from _walk_all(stmt.body)
        elif isinstance(stmt, ast.IfBlock):
            for _cond, body in stmt.branches:
                yield from _walk_all(body)
        elif isinstance(stmt, ast.LogicalIf):
            yield from _walk_all([stmt.stmt])


def _stmt_exprs(stmt: ast.Stmt):
    if isinstance(stmt, ast.Assign):
        yield stmt.target
        yield stmt.expr
    elif isinstance(stmt, ast.DoLoop):
        yield stmt.start
        yield stmt.end
        if stmt.step is not None:
            yield stmt.step
    elif isinstance(stmt, ast.WhileLoop):
        yield stmt.cond
    elif isinstance(stmt, ast.LogicalIf):
        yield stmt.cond
    elif isinstance(stmt, ast.IfBlock):
        for cond, _body in stmt.branches:
            if cond is not None:
                yield cond
    elif isinstance(stmt, ast.Print):
        yield from stmt.items
    elif isinstance(stmt, ast.CallStmt):
        yield from stmt.args


# --------------------------------------------------------------------------
# Renaming
# --------------------------------------------------------------------------


def _rename_expr(expr: ast.Expr, mapping: Dict[str, str]) -> None:
    for node in ast.walk_expressions(expr):
        if isinstance(node, (ast.Var, ast.ArrayRef)):
            if node.name in mapping:
                node.name = mapping[node.name]
        elif isinstance(node, ast.Call):
            # Pre-resolution, formal-array references still look like
            # calls; intrinsic names are never in the mapping.
            if node.name in mapping:
                node.name = mapping[node.name]


def _rename_block(stmts: Sequence[ast.Stmt], mapping: Dict[str, str]) -> None:
    for stmt in _walk_all(stmts):
        if isinstance(stmt, ast.DoLoop) and stmt.var in mapping:
            stmt.var = mapping[stmt.var]
        if isinstance(stmt, ast.CallStmt) and stmt.name in mapping:
            stmt.name = mapping[stmt.name]
        for expr in _stmt_exprs(stmt):
            _rename_expr(expr, mapping)


def _relabel_block(stmts: Sequence[ast.Stmt], alloc: _NameAllocator) -> None:
    label_map: Dict[int, int] = {}
    for stmt in _walk_all(stmts):
        if stmt.label is not None:
            label_map.setdefault(stmt.label, alloc.fresh_label())
            stmt.label = label_map[stmt.label]
    for stmt in _walk_all(stmts):
        if isinstance(stmt, ast.DoLoop) and stmt.end_label is not None:
            if stmt.end_label not in label_map:  # pragma: no cover
                raise InlineError(
                    f"DO terminator label {stmt.end_label} lost in inlining",
                    stmt.line,
                )
            stmt.end_label = label_map[stmt.end_label]


# --------------------------------------------------------------------------
# Local-name discovery
# --------------------------------------------------------------------------


def _scalar_names(sub: ast.Subroutine) -> Set[str]:
    """Every scalar-variable name used in the subroutine body."""
    names: Set[str] = set()
    array_names = {d.name for d in sub.arrays}
    param_names = {p.name for p in sub.params}
    for stmt in _walk_all(sub.body):
        if isinstance(stmt, ast.DoLoop):
            names.add(stmt.var)
        for expr in _stmt_exprs(stmt):
            for node in ast.walk_expressions(expr):
                if isinstance(node, ast.Var):
                    names.add(node.name)
    return names - array_names - param_names


def _resolved_dims(
    decl: ast.ArrayDecl, params: Dict[str, float]
) -> Tuple[int, ...]:
    return tuple(int(eval_const_expr(d, params)) for d in decl.dims)


# --------------------------------------------------------------------------
# Expansion
# --------------------------------------------------------------------------


def inline_program(
    program: ast.Program,
    subs: Dict[str, ast.Subroutine],
    max_depth: int = 10,
) -> ast.Program:
    """Replace every CALL in ``program`` (recursively) with inlined
    bodies; hoisted declarations are appended to the program."""
    alloc = _NameAllocator(program, subs)
    program.body = _inline_block(
        program.body, program, subs, alloc, stack=(), max_depth=max_depth
    )
    return program


def _inline_block(
    stmts: List[ast.Stmt],
    program: ast.Program,
    subs: Dict[str, ast.Subroutine],
    alloc: _NameAllocator,
    stack: Tuple[str, ...],
    max_depth: int,
) -> List[ast.Stmt]:
    result: List[ast.Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, ast.CallStmt):
            result.extend(
                _expand_call(stmt, program, subs, alloc, stack, max_depth)
            )
            continue
        if isinstance(stmt, (ast.DoLoop, ast.WhileLoop)):
            stmt.body = _inline_block(
                stmt.body, program, subs, alloc, stack, max_depth
            )
        elif isinstance(stmt, ast.IfBlock):
            stmt.branches = [
                (
                    cond,
                    _inline_block(body, program, subs, alloc, stack, max_depth),
                )
                for cond, body in stmt.branches
            ]
        elif isinstance(stmt, ast.LogicalIf) and isinstance(
            stmt.stmt, ast.CallStmt
        ):
            raise InlineError(
                "a logical IF may not guard a CALL (wrap it in a block IF)",
                stmt.line,
            )
        elif isinstance(stmt, ast.Return):
            raise InlineError("RETURN outside a subroutine", stmt.line)
        result.append(stmt)
    return result


def _expand_call(
    call: ast.CallStmt,
    program: ast.Program,
    subs: Dict[str, ast.Subroutine],
    alloc: _NameAllocator,
    stack: Tuple[str, ...],
    max_depth: int,
) -> List[ast.Stmt]:
    sub = subs.get(call.name)
    if sub is None:
        raise InlineError(f"CALL to unknown subroutine {call.name}", call.line)
    if call.name in stack:
        chain = " -> ".join(stack + (call.name,))
        raise InlineError(f"recursive CALL: {chain}", call.line)
    if len(stack) >= max_depth:
        raise InlineError(
            f"CALL nesting deeper than {max_depth}", call.line
        )
    if len(call.args) != len(sub.formals):
        raise InlineError(
            f"{sub.name} takes {len(sub.formals)} arguments, "
            f"CALL passes {len(call.args)}",
            call.line,
        )

    body = copy.deepcopy(sub.body)
    if body and isinstance(body[-1], ast.Return):
        body.pop()
    for stmt in _walk_all(body):
        if isinstance(stmt, ast.Return):
            raise InlineError(
                f"early RETURN in {sub.name} (only a trailing RETURN is "
                "supported by the inliner)",
                stmt.line,
            )

    mapping: Dict[str, str] = {}
    prologue: List[ast.Stmt] = []
    caller_arrays = {d.name: d for d in program.arrays}
    caller_params = {
        p.name: eval_const_expr(p.value, {}) for p in _const_params(program)
    }
    sub_params = {
        p.name: eval_const_expr(p.value, {}) for p in _const_params(sub)
    }
    formal_arrays = set(sub.formal_array_names())

    for formal, actual in zip(sub.formals, call.args):
        if formal in formal_arrays:
            if not isinstance(actual, (ast.Var, ast.Call)) or (
                isinstance(actual, ast.Call) and actual.args
            ):
                raise InlineError(
                    f"array argument {formal} of {sub.name} needs a bare "
                    "array name",
                    call.line,
                )
            actual_name = actual.name
            decl = caller_arrays.get(actual_name)
            if decl is None:
                raise InlineError(
                    f"CALL {sub.name}: {actual_name} is not a declared array",
                    call.line,
                )
            formal_decl = next(d for d in sub.arrays if d.name == formal)
            want = _resolved_dims(formal_decl, sub_params)
            have = _resolved_dims(decl, caller_params)
            if want != have:
                raise InlineError(
                    f"CALL {sub.name}: array {actual_name}{list(have)} does "
                    f"not match formal {formal}{list(want)}",
                    call.line,
                )
            mapping[formal] = actual_name
        elif isinstance(actual, ast.Var):
            mapping[formal] = actual.name  # by reference
        else:
            temp = alloc.fresh_name(formal)
            prologue.append(
                ast.Assign(
                    line=call.line,
                    target=ast.Var(line=call.line, name=temp),
                    expr=actual,
                )
            )
            mapping[formal] = temp  # by value

    # Local PARAMETERs: rename and hoist.
    for param in sub.params:
        new_name = alloc.fresh_name(param.name)
        mapping[param.name] = new_name
        hoisted = copy.deepcopy(param)
        hoisted.name = new_name
        _rename_expr(hoisted.value, mapping)
        program.params.append(hoisted)

    # Local arrays: rename, hoist declaration and DATA.
    for decl in sub.arrays:
        if decl.name in formal_arrays:
            continue
        new_name = alloc.fresh_name(decl.name)
        mapping[decl.name] = new_name
        hoisted = copy.deepcopy(decl)
        hoisted.name = new_name
        for dim in hoisted.dims:
            _rename_expr(dim, mapping)
        program.arrays.append(hoisted)
    for group in sub.data:
        hoisted = copy.deepcopy(group)
        if isinstance(hoisted.target, str):
            if hoisted.target in formal_arrays:
                raise InlineError(
                    f"DATA may not initialize formal array {hoisted.target}",
                    hoisted.line,
                )
            hoisted.target = mapping.get(hoisted.target, hoisted.target)
        else:
            hoisted.target.name = mapping.get(
                hoisted.target.name, hoisted.target.name
            )
            for index in hoisted.target.indices:
                _rename_expr(index, mapping)
        program.data.append(hoisted)

    # Local scalars: everything else gets a fresh name.
    for scalar in sorted(_scalar_names(sub) - set(sub.formals)):
        mapping[scalar] = alloc.fresh_name(scalar)

    _rename_block(body, mapping)
    _relabel_block(body, alloc)
    # Nested calls inside the inlined body expand with this sub on the
    # stack (catches mutual recursion).
    body = _inline_block(
        body, program, subs, alloc, stack + (sub.name,), max_depth
    )
    return prologue + body


def _const_params(unit) -> List[ast.ParamDecl]:
    """PARAMETER declarations whose values are plain constants.

    Chained parameters (M = N * 2) are resolved by the symbol table
    later; for shape checking only directly-constant ones matter, and
    non-constant ones are skipped here."""
    result = []
    env: Dict[str, float] = {}
    for param in unit.params:
        try:
            env[param.name] = eval_const_expr(param.value, env)
        except FrontendError:
            continue
        result.append(
            ast.ParamDecl(name=param.name, value=ast.Num(value=env[param.name]))
        )
    return result
