"""Turn an AST back into mini-FORTRAN source text.

Used for rendering instrumented programs (Figure 5c style), for
round-trip tests, and for debugging workload definitions.  Output is
canonical: upper case, two-space indentation per loop/IF level, block
``DO``/``ENDDO`` form for loops parsed from block form, and the original
labeled form for labeled loops.
"""

from __future__ import annotations

from typing import List

from repro.frontend import ast

_PRECEDENCE = {
    ".OR.": 1,
    ".AND.": 2,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "==": 4,
    "/=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "**": 8,
}


def unparse_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render one expression, parenthesizing only where needed."""
    if isinstance(expr, ast.Num):
        return _format_number(expr.value)
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.LogicalLit):
        return ".TRUE." if expr.value else ".FALSE."
    if isinstance(expr, ast.ArrayRef):
        inner = ", ".join(unparse_expr(ix) for ix in expr.indices)
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.Call):
        inner = ", ".join(unparse_expr(a) for a in expr.args)
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.UnaryOp):
        if expr.op == ".NOT.":
            text = f".NOT. {unparse_expr(expr.operand, 3)}"
            prec = 3
        else:
            text = f"-{unparse_expr(expr.operand, 7)}"
            prec = 7
        return f"({text})" if parent_prec > prec else text
    if isinstance(expr, (ast.BinOp, ast.Compare, ast.LogicalOp)):
        prec = _PRECEDENCE[expr.op]
        # Left-associative operators re-parenthesize their right child at
        # prec+1; right-associative ** re-parenthesizes its *left* child.
        left_prec = prec + 1 if expr.op == "**" else prec
        right_prec = prec if expr.op == "**" else prec + 1
        left = unparse_expr(expr.left, left_prec)
        right = unparse_expr(expr.right, right_prec)
        op = expr.op if expr.op == "**" else f" {expr.op} "
        text = f"{left}{op}{right}"
        return f"({text})" if parent_prec > prec else text
    raise TypeError(f"cannot unparse {type(expr).__name__}")  # pragma: no cover


def _format_number(value) -> str:
    if isinstance(value, bool):  # pragma: no cover - bools never parsed as Num
        return ".TRUE." if value else ".FALSE."
    if isinstance(value, int):
        return str(value)
    text = repr(float(value))
    return text.upper().replace("E+", "E")


def _label_prefix(stmt: ast.Stmt) -> str:
    return f"{stmt.label} " if stmt.label is not None else ""


def unparse_statements(stmts: List[ast.Stmt], indent: int = 0) -> List[str]:
    """Render a statement list as source lines."""
    pad = "  " * indent
    lines: List[str] = []
    for stmt in stmts:
        if isinstance(stmt, ast.Assign):
            lines.append(
                f"{pad}{_label_prefix(stmt)}{unparse_expr(stmt.target)} = "
                f"{unparse_expr(stmt.expr)}"
            )
        elif isinstance(stmt, ast.Continue):
            lines.append(f"{pad}{_label_prefix(stmt)}CONTINUE")
        elif isinstance(stmt, ast.Stop):
            lines.append(f"{pad}{_label_prefix(stmt)}STOP")
        elif isinstance(stmt, ast.ExitLoop):
            lines.append(f"{pad}{_label_prefix(stmt)}EXIT")
        elif isinstance(stmt, ast.Print):
            if stmt.items:
                rendered = ", ".join(unparse_expr(item) for item in stmt.items)
                lines.append(f"{pad}{_label_prefix(stmt)}PRINT *, {rendered}")
            else:
                lines.append(f"{pad}{_label_prefix(stmt)}PRINT *")
        elif isinstance(stmt, ast.CallStmt):
            if stmt.args:
                rendered = ", ".join(unparse_expr(a) for a in stmt.args)
                lines.append(f"{pad}{_label_prefix(stmt)}CALL {stmt.name}({rendered})")
            else:
                lines.append(f"{pad}{_label_prefix(stmt)}CALL {stmt.name}")
        elif isinstance(stmt, ast.Return):
            lines.append(f"{pad}{_label_prefix(stmt)}RETURN")
        elif isinstance(stmt, ast.AllocateStmt):
            chain = " else ".join(f"({pi},{x})" for pi, x in stmt.requests)
            lines.append(f"{pad}{_label_prefix(stmt)}ALLOCATE ({chain})")
        elif isinstance(stmt, ast.LockStmt):
            body = ",".join([str(stmt.priority_index)] + list(stmt.arrays))
            lines.append(f"{pad}{_label_prefix(stmt)}LOCK ({body})")
        elif isinstance(stmt, ast.UnlockStmt):
            lines.append(f"{pad}{_label_prefix(stmt)}UNLOCK ({','.join(stmt.arrays)})")
        elif isinstance(stmt, ast.WhileLoop):
            lines.append(
                f"{pad}{_label_prefix(stmt)}DO WHILE ({unparse_expr(stmt.cond)})"
            )
            lines.extend(unparse_statements(stmt.body, indent + 1))
            lines.append(f"{pad}ENDDO")
        elif isinstance(stmt, ast.DoLoop):
            head = f"{pad}{_label_prefix(stmt)}DO "
            if stmt.end_label is not None:
                head += f"{stmt.end_label} "
            head += f"{stmt.var} = {unparse_expr(stmt.start)}, {unparse_expr(stmt.end)}"
            if stmt.step is not None:
                head += f", {unparse_expr(stmt.step)}"
            lines.append(head)
            lines.extend(unparse_statements(stmt.body, indent + 1))
            if stmt.end_label is None:
                lines.append(f"{pad}ENDDO")
        elif isinstance(stmt, ast.LogicalIf):
            guarded = unparse_statements([stmt.stmt], 0)[0]
            lines.append(
                f"{pad}{_label_prefix(stmt)}IF ({unparse_expr(stmt.cond)}) {guarded}"
            )
        elif isinstance(stmt, ast.IfBlock):
            for i, (cond, body) in enumerate(stmt.branches):
                if i == 0:
                    lines.append(
                        f"{pad}{_label_prefix(stmt)}IF ({unparse_expr(cond)}) THEN"
                    )
                elif cond is not None:
                    lines.append(f"{pad}ELSEIF ({unparse_expr(cond)}) THEN")
                else:
                    lines.append(f"{pad}ELSE")
                lines.extend(unparse_statements(body, indent + 1))
            lines.append(f"{pad}ENDIF")
        else:  # pragma: no cover
            raise TypeError(f"cannot unparse {type(stmt).__name__}")
    return lines


def unparse_program(program: ast.Program) -> str:
    """Render a whole program as canonical mini-FORTRAN source."""
    lines = [f"PROGRAM {program.name}"]
    if program.params:
        bindings = ", ".join(
            f"{p.name} = {unparse_expr(p.value)}" for p in program.params
        )
        lines.append(f"PARAMETER ({bindings})")
    if program.arrays:
        decls = ", ".join(
            f"{a.name}({', '.join(unparse_expr(d) for d in a.dims)})"
            for a in program.arrays
        )
        lines.append(f"DIMENSION {decls}")
    for group in program.data:
        if isinstance(group.target, str):
            target = group.target
        else:
            target = unparse_expr(group.target)
        values = ", ".join(_format_number(v) for v in group.values)
        lines.append(f"DATA {target} /{values}/")
    lines.extend(unparse_statements(program.body))
    lines.append("END")
    return "\n".join(lines) + "\n"
