"""Exception hierarchy for the mini-FORTRAN frontend.

All frontend failures derive from :class:`FrontendError` so callers can
catch a single type.  Every error carries the 1-based source line at which
it was detected, which is also embedded in ``str(error)``.
"""

from __future__ import annotations


class FrontendError(Exception):
    """Base class for all lexing/parsing/semantic errors."""

    def __init__(self, message: str, line: int = 0):
        self.message = message
        self.line = line
        if line:
            super().__init__(f"line {line}: {message}")
        else:
            super().__init__(message)


class LexError(FrontendError):
    """Raised when the lexer encounters a character it cannot tokenize."""


class ParseError(FrontendError):
    """Raised when the token stream does not form a valid program."""


class SemanticError(FrontendError):
    """Raised for well-formed but meaningless programs.

    Examples: referencing an undeclared array, a three-dimensional array
    (the paper considers at most two dimensions), a ``DO`` terminator label
    that never appears, or a ``PARAMETER`` that is not a constant.
    """
