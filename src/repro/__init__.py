"""repro — Compiler Directed Memory Management Policy for Numerical
Programs (Malkawi & Patel, SOSP 1985): a full reproduction.

The pipeline, end to end:

1. :mod:`repro.frontend` parses mini-FORTRAN source;
2. :mod:`repro.analysis` computes the Section-2 locality parameters
   (Λ, Δ, X, Θ per loop) and Procedure-1 priority indexes;
3. :mod:`repro.directives` inserts ALLOCATE/LOCK/UNLOCK directives
   (Algorithms 1 and 2);
4. :mod:`repro.tracegen` executes the program, emitting the
   page-reference trace with resolved directive events;
5. :mod:`repro.vm` replays the trace under LRU, WS, CD (and FIFO, OPT,
   PFF) and reports PF, MEM, and ST;
6. :mod:`repro.workloads` bundles the nine benchmark programs and
   :mod:`repro.experiments` regenerates Tables 1–4.

Quickstart::

    from repro import quick_compare
    for result in quick_compare("CONDUCT"):
        print(result.describe())
"""

from typing import List

from repro.analysis import LocalityAnalysis, PageConfig, analyze_program
from repro.directives import instrument_program, render_instrumented
from repro.frontend import parse_source
from repro.frontend.symbols import SymbolTable
from repro.tracegen import generate_trace
from repro.vm import (
    BLIAnalyzer,
    CDConfig,
    CDPolicy,
    FIFOPolicy,
    LRUPolicy,
    LRUSweep,
    MultiprogSimulator,
    OPTPolicy,
    PFFPolicy,
    SimulationResult,
    WorkingSetPolicy,
    WSSweep,
    simulate,
)
from repro.vm.policies import AdaptiveCDPolicy, ClockPolicy
from repro.workloads import all_workloads, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "AdaptiveCDPolicy",
    "BLIAnalyzer",
    "CDConfig",
    "CDPolicy",
    "ClockPolicy",
    "FIFOPolicy",
    "MultiprogSimulator",
    "LRUPolicy",
    "LRUSweep",
    "LocalityAnalysis",
    "OPTPolicy",
    "PFFPolicy",
    "PageConfig",
    "SimulationResult",
    "SymbolTable",
    "WSSweep",
    "WorkingSetPolicy",
    "all_workloads",
    "analyze_program",
    "generate_trace",
    "get_workload",
    "instrument_program",
    "parse_source",
    "quick_compare",
    "render_instrumented",
    "simulate",
    "workload_names",
]


def quick_compare(workload_name: str) -> List[SimulationResult]:
    """Replay one bundled workload under CD, LRU, and WS at matched
    average memory — the paper's Table-3 comparison for one program."""
    from repro.experiments.runner import artifacts_for

    artifacts = artifacts_for(workload_name)
    cd = artifacts.cd_result(CDConfig(pi_cap=2))
    frames = max(1, round(cd.mem_average))
    lru = artifacts.lru.result(frames)
    tau = artifacts.ws.tau_for_mem(cd.mem_average)
    ws = artifacts.ws.result(tau)
    return [cd, lru, ws]
