"""Algorithm 2 (Figure 4): inserting LOCK and UNLOCK directives.

For each loop in a nest, the algorithm scans the loop body in statement
order, collecting arrays referenced *directly at this level* (pages of
these arrays may be re-referenced after an inner loop finishes and
control branches back).  When the scan reaches an inner loop and some
arrays were collected, a ``LOCK (PJ, …)`` is inserted immediately before
that inner loop, with PJ the priority index of the *containing* loop.
Arrays referenced after the last inner loop are not locked ("IF Loop
Exit Is Found THEN SKIP Next INSERT").

An ``UNLOCK`` listing every array locked anywhere in the nest is placed
at the end of each outermost loop.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.locality import LocalityAnalysis
from repro.analysis.looptree import LoopNode
from repro.directives.model import LockDirective, UnlockDirective
from repro.frontend import ast


def insert_lock_directives(
    analysis: LocalityAnalysis,
) -> Tuple[Dict[int, LockDirective], Dict[int, UnlockDirective]]:
    """Run Algorithm 2 over every loop nest of the analyzed program.

    Returns ``(locks_before, unlocks_after)`` keyed by ``loop_id``:
    ``locks_before[c]`` executes immediately before entering loop ``c``;
    ``unlocks_after[r]`` executes right after the outermost loop ``r``
    exits.
    """
    locks: Dict[int, LockDirective] = {}
    unlocks: Dict[int, UnlockDirective] = {}
    for root in analysis.tree.roots:
        locked_in_nest: List[str] = []
        for node in root.self_and_descendants():
            _scan_loop_body(node, analysis, locks, locked_in_nest)
        if locked_in_nest:
            # Preserve first-lock order while removing duplicates.
            seen = dict.fromkeys(locked_in_nest)
            unlocks[root.loop_id] = UnlockDirective(
                loop_id=root.loop_id, arrays=tuple(seen)
            )
    return locks, unlocks


def _scan_loop_body(
    node: LoopNode,
    analysis: LocalityAnalysis,
    locks: Dict[int, LockDirective],
    locked_in_nest: List[str],
) -> None:
    """Scan one loop body in statement order (Algorithm 2's SEARCH)."""
    if node.is_innermost:
        return  # nothing to insert before — no inner loops
    pj = analysis.report_for(node.loop_id).priority_index
    pending: List[str] = []
    for stmt in node.loop.body:
        if isinstance(stmt, (ast.DoLoop, ast.WhileLoop)):
            if pending:
                arrays = tuple(dict.fromkeys(pending))
                locks[stmt.loop_id] = LockDirective(
                    loop_id=stmt.loop_id, priority_index=pj, arrays=arrays
                )
                locked_in_nest.extend(arrays)
                pending = []
            continue
        pending.extend(_arrays_in_statement(stmt))
    # Anything left in ``pending`` was referenced after the last inner
    # loop: the loop exit comes next, so the INSERT is skipped.


def _arrays_in_statement(stmt: ast.Stmt) -> List[str]:
    """Array names referenced by one statement (nested loops excluded —
    they are scanned on their own)."""
    names: List[str] = []
    if isinstance(stmt, ast.IfBlock):
        for cond, body in stmt.branches:
            if cond is not None:
                names.extend(
                    n.name
                    for n in ast.walk_expressions(cond)
                    if isinstance(n, ast.ArrayRef)
                )
            for inner in body:
                if not isinstance(inner, (ast.DoLoop, ast.WhileLoop)):
                    names.extend(_arrays_in_statement(inner))
        return names
    names.extend(ref.name for ref in ast.statement_array_refs(stmt))
    return names
