"""Data model for memory directives and the instrumentation plan."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class AllocateRequest:
    """One ``(PI, X)`` element of an ALLOCATE argument list."""

    priority_index: int  # PI — larger = outer loop = tried first
    pages: int  # X — virtual size of the corresponding locality

    def __post_init__(self) -> None:
        if self.priority_index < 1:
            raise ValueError("priority index must be >= 1")
        if self.pages < 1:
            raise ValueError("a request must ask for at least one page")


@dataclass(frozen=True)
class AllocateDirective:
    """``ALLOCATE ((PI1,X1) else (PI2,X2) else …)`` before one loop.

    Requests are ordered outermost-first: strictly decreasing PI and
    non-increasing X, the invariants the paper states
    (``PI1 > PI2 > …``, ``X1 ≥ X2 ≥ …``).
    """

    loop_id: int  # the loop this directive immediately precedes
    requests: Tuple[AllocateRequest, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("ALLOCATE needs at least one request")
        for earlier, later in zip(self.requests, self.requests[1:]):
            if earlier.priority_index <= later.priority_index:
                raise ValueError("ALLOCATE PIs must be strictly decreasing")
            if earlier.pages < later.pages:
                raise ValueError("ALLOCATE request sizes must be non-increasing")

    @property
    def innermost(self) -> AllocateRequest:
        """The last (smallest, highest-priority) request."""
        return self.requests[-1]

    def render(self) -> str:
        """The paper's surface syntax for the directive."""
        parts = " else ".join(
            f"({r.priority_index},{r.pages})" for r in self.requests
        )
        return f"ALLOCATE ({parts})"


@dataclass(frozen=True)
class LockDirective:
    """``LOCK (PJ, Y1, Y2, …)`` before one inner loop.

    ``arrays`` names the arrays whose *current* pages the run-time
    resolves and pins (the compiler cannot know page numbers statically;
    the paper's Y_i are resolved when the directive executes).
    """

    loop_id: int  # the inner loop this directive immediately precedes
    priority_index: int  # PJ of the loop containing the references
    arrays: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.priority_index < 2:
            # "Since there will be no pages locked in the inner most
            # loop … the highest priority of locked pages is PJ = 2."
            raise ValueError("LOCK PJ must be >= 2")
        if not self.arrays:
            raise ValueError("LOCK needs at least one array")

    def render(self) -> str:
        return f"LOCK ({self.priority_index},{','.join(self.arrays)})"


@dataclass(frozen=True)
class UnlockDirective:
    """``UNLOCK (Y1, Y2, …)`` at the end of one outermost loop."""

    loop_id: int  # the outermost loop this directive follows
    arrays: Tuple[str, ...]

    def render(self) -> str:
        return f"UNLOCK ({','.join(self.arrays)})"


@dataclass
class InstrumentationPlan:
    """Directive placement for one program.

    The trace generator executes:

    * ``allocates[loop_id]`` every time control is about to enter that
      loop;
    * ``locks_before[loop_id]`` immediately before entering that loop;
    * ``unlocks_after[loop_id]`` right after that (outermost) loop exits.
    """

    allocates: Dict[int, AllocateDirective] = field(default_factory=dict)
    locks_before: Dict[int, LockDirective] = field(default_factory=dict)
    unlocks_after: Dict[int, UnlockDirective] = field(default_factory=dict)

    @property
    def directive_count(self) -> int:
        return (
            len(self.allocates) + len(self.locks_before) + len(self.unlocks_after)
        )
