"""Memory directives (Section 3 of the paper).

Three directives are modeled:

``ALLOCATE ((PI1, X1) else (PI2, X2) else …)``
    A prioritized list of memory requests sized to the localities of the
    enclosing loop levels.  Inserted before every loop by Algorithm 1
    (:mod:`allocate_insertion`).

``LOCK (PJ, Y1, Y2, …)``
    A soft pin on the current pages of arrays referenced in an outer
    loop, inserted before each inner loop by Algorithm 2
    (:mod:`lock_insertion`).

``UNLOCK (Y1, Y2, …)``
    Releases the pins; inserted at the end of each outermost loop.

:func:`instrument_program` runs both algorithms and returns an
:class:`InstrumentationPlan` the trace generator consults at run time;
:func:`render_instrumented` prints the program with directives
interleaved, Figure-5c style.
"""

from repro.directives.model import (
    AllocateDirective,
    AllocateRequest,
    InstrumentationPlan,
    LockDirective,
    UnlockDirective,
)
from repro.directives.allocate_insertion import insert_allocate_directives
from repro.directives.lock_insertion import insert_lock_directives
from repro.directives.instrument import instrument_program
from repro.directives.parse import (
    check_instrumented_roundtrip,
    extract_plan,
    parse_instrumented,
    splice_plan,
)
from repro.directives.render import render_instrumented

__all__ = [
    "AllocateDirective",
    "AllocateRequest",
    "InstrumentationPlan",
    "LockDirective",
    "UnlockDirective",
    "check_instrumented_roundtrip",
    "extract_plan",
    "insert_allocate_directives",
    "insert_lock_directives",
    "instrument_program",
    "parse_instrumented",
    "render_instrumented",
    "splice_plan",
]
