"""Combined instrumentation: run Algorithms 1 and 2 and build the plan."""

from __future__ import annotations

from typing import Optional

from repro.analysis.locality import LocalityAnalysis, SizingStrategy, analyze_program
from repro.analysis.parameters import PageConfig
from repro.directives.allocate_insertion import insert_allocate_directives
from repro.directives.lock_insertion import insert_lock_directives
from repro.directives.model import InstrumentationPlan
from repro.frontend import ast
from repro.frontend.symbols import SymbolTable


def instrument_program(
    program: ast.Program,
    symbols: Optional[SymbolTable] = None,
    page_config: Optional[PageConfig] = None,
    strategy: SizingStrategy = SizingStrategy.ACTIVE_PAGE,
    min_pages: int = 1,
    with_locks: bool = True,
    analysis: Optional[LocalityAnalysis] = None,
) -> InstrumentationPlan:
    """Produce the full directive placement for ``program``.

    ``with_locks=False`` produces an ALLOCATE-only plan — the paper's
    evaluation studies ALLOCATE ("The effectiveness of LOCK and UNLOCK
    directives is not studied in this work"), so the experiment harness
    uses this mode by default and the LOCK path is exercised by the
    ablation benchmarks.

    Passing a pre-built ``analysis`` avoids re-analyzing when the caller
    already has one; the other analysis parameters are then ignored.
    """
    if analysis is None:
        analysis = analyze_program(
            program,
            symbols=symbols,
            page_config=page_config,
            strategy=strategy,
            min_pages=min_pages,
        )
    plan = InstrumentationPlan()
    plan.allocates = insert_allocate_directives(analysis)
    if with_locks:
        plan.locks_before, plan.unlocks_after = insert_lock_directives(analysis)
    return plan
