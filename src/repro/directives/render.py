"""Render an instrumented program the way Figure 5c does: the source
text with ALLOCATE/LOCK/UNLOCK lines interleaved at their insertion
points.

Rendering is defined as *splice then unparse*: directive statement nodes
are inserted into a copy of the AST (:func:`repro.directives.parse.splice_plan`)
and the result goes through the ordinary unparser.  That single pipeline
guarantees the listing round-trips through
:func:`repro.directives.parse.parse_instrumented` — DATA groups,
statement labels, and every other node kind survive because the
unparser, not a parallel renderer, produces the text.
"""

from __future__ import annotations

from repro.directives.model import InstrumentationPlan
from repro.directives.parse import splice_plan
from repro.frontend import ast
from repro.frontend.unparse import unparse_program


def render_instrumented(program: ast.Program, plan: InstrumentationPlan) -> str:
    """Program listing with directives interleaved (Figure-5c style)."""
    return unparse_program(splice_plan(program, plan))
