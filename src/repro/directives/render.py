"""Render an instrumented program the way Figure 5c does: the source
text with ALLOCATE/LOCK/UNLOCK lines interleaved at their insertion
points."""

from __future__ import annotations

from typing import List

from repro.directives.model import InstrumentationPlan
from repro.frontend import ast
from repro.frontend.unparse import unparse_expr, unparse_statements


def render_instrumented(program: ast.Program, plan: InstrumentationPlan) -> str:
    """Program listing with directives interleaved (Figure-5c style)."""
    lines: List[str] = [f"PROGRAM {program.name}"]
    if program.params:
        bindings = ", ".join(
            f"{p.name} = {unparse_expr(p.value)}" for p in program.params
        )
        lines.append(f"PARAMETER ({bindings})")
    if program.arrays:
        decls = ", ".join(
            f"{a.name}({', '.join(unparse_expr(d) for d in a.dims)})"
            for a in program.arrays
        )
        lines.append(f"DIMENSION {decls}")
    _render_block(program.body, plan, 0, lines)
    lines.append("END")
    return "\n".join(lines) + "\n"


def _render_block(
    stmts: List[ast.Stmt],
    plan: InstrumentationPlan,
    indent: int,
    lines: List[str],
) -> None:
    pad = "  " * indent
    for stmt in stmts:
        if isinstance(stmt, ast.WhileLoop):
            lock = plan.locks_before.get(stmt.loop_id)
            if lock is not None:
                lines.append(f"{pad}{lock.render()}")
            allocate = plan.allocates.get(stmt.loop_id)
            if allocate is not None:
                lines.append(f"{pad}{allocate.render()}")
            lines.append(f"{pad}DO WHILE ({unparse_expr(stmt.cond)})")
            _render_block(stmt.body, plan, indent + 1, lines)
            lines.append(f"{pad}ENDDO")
            unlock = plan.unlocks_after.get(stmt.loop_id)
            if unlock is not None:
                lines.append(f"{pad}{unlock.render()}")
        elif isinstance(stmt, ast.DoLoop):
            lock = plan.locks_before.get(stmt.loop_id)
            if lock is not None:
                lines.append(f"{pad}{lock.render()}")
            allocate = plan.allocates.get(stmt.loop_id)
            if allocate is not None:
                lines.append(f"{pad}{allocate.render()}")
            head = f"{pad}DO "
            if stmt.end_label is not None:
                head += f"{stmt.end_label} "
            head += (
                f"{stmt.var} = {unparse_expr(stmt.start)}, {unparse_expr(stmt.end)}"
            )
            if stmt.step is not None:
                head += f", {unparse_expr(stmt.step)}"
            lines.append(head)
            _render_block(stmt.body, plan, indent + 1, lines)
            if stmt.end_label is None:
                lines.append(f"{pad}ENDDO")
            unlock = plan.unlocks_after.get(stmt.loop_id)
            if unlock is not None:
                lines.append(f"{pad}{unlock.render()}")
        elif isinstance(stmt, ast.IfBlock):
            for i, (cond, body) in enumerate(stmt.branches):
                if i == 0:
                    lines.append(f"{pad}IF ({unparse_expr(cond)}) THEN")
                elif cond is not None:
                    lines.append(f"{pad}ELSEIF ({unparse_expr(cond)}) THEN")
                else:
                    lines.append(f"{pad}ELSE")
                _render_block(body, plan, indent + 1, lines)
            lines.append(f"{pad}ENDIF")
        else:
            lines.extend(unparse_statements([stmt], indent))
