"""Directive statements ⇄ :class:`InstrumentationPlan`.

The Figure-5c rendering interleaves ALLOCATE/LOCK/UNLOCK lines with the
source text.  This module makes that rendering a first-class program
representation that round-trips through the parser:

* :func:`splice_plan` — copy a program and insert directive *statement*
  nodes at the plan's insertion points (LOCK, then ALLOCATE, immediately
  before each loop; UNLOCK immediately after an outermost loop);
* :func:`extract_plan` — the inverse: remove directive statements from a
  parsed program and rebuild the plan they describe;
* :func:`parse_instrumented` — parse an instrumented source into a
  directive-free program plus its plan;
* :func:`check_instrumented_roundtrip` — the fixed-point assertion the
  static checker and the oracle rely on: render → parse → render must
  reproduce the text, and the recovered plan must equal the original.

Extraction is strict about placement — a directive that does not
immediately precede a loop (or, for UNLOCK, immediately follow one) is a
:class:`~repro.frontend.errors.SemanticError`, because the run-time
model has no execution point for it.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Tuple

from repro.directives.model import (
    AllocateDirective,
    AllocateRequest,
    InstrumentationPlan,
    LockDirective,
    UnlockDirective,
)
from repro.frontend import ast
from repro.frontend.errors import SemanticError
from repro.frontend.parser import parse_source

__all__ = [
    "splice_plan",
    "extract_plan",
    "parse_instrumented",
    "check_instrumented_roundtrip",
]


# -- plan -> program --------------------------------------------------------


def splice_plan(
    program: ast.Program, plan: InstrumentationPlan
) -> ast.Program:
    """A deep copy of ``program`` with directive statements spliced in.

    The copy unparses to the Figure-5c listing; the original program is
    left untouched.  Directive nodes carry the line number of the loop
    they annotate, so diagnostics pointing at a directive land on the
    right source region.
    """
    spliced = copy.deepcopy(program)
    _splice_block(spliced.body, plan)
    return spliced


def _splice_block(stmts: List[ast.Stmt], plan: InstrumentationPlan) -> None:
    out: List[ast.Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, (ast.DoLoop, ast.WhileLoop)):
            lock = plan.locks_before.get(stmt.loop_id)
            if lock is not None:
                out.append(
                    ast.LockStmt(
                        line=stmt.line,
                        priority_index=lock.priority_index,
                        arrays=list(lock.arrays),
                    )
                )
            allocate = plan.allocates.get(stmt.loop_id)
            if allocate is not None:
                out.append(
                    ast.AllocateStmt(
                        line=stmt.line,
                        requests=[
                            (r.priority_index, r.pages)
                            for r in allocate.requests
                        ],
                    )
                )
            _splice_block(stmt.body, plan)
            out.append(stmt)
            unlock = plan.unlocks_after.get(stmt.loop_id)
            if unlock is not None:
                out.append(
                    ast.UnlockStmt(line=stmt.line, arrays=list(unlock.arrays))
                )
        elif isinstance(stmt, ast.IfBlock):
            for _cond, body in stmt.branches:
                _splice_block(body, plan)
            out.append(stmt)
        else:
            out.append(stmt)
    stmts[:] = out


# -- program -> plan --------------------------------------------------------


def extract_plan(program: ast.Program) -> InstrumentationPlan:
    """Remove directive statements from ``program`` (in place) and build
    the :class:`InstrumentationPlan` they describe.

    Raises :class:`SemanticError` for directives with no attachment
    point and for directives the run-time model cannot represent (empty
    request chains, non-monotone PI sequences, …).
    """
    plan = InstrumentationPlan()
    _extract_block(program.body, plan)
    return plan


def _model_error(err: Exception, line: int) -> SemanticError:
    return SemanticError(f"malformed directive: {err}", line)


def _extract_block(stmts: List[ast.Stmt], plan: InstrumentationPlan) -> None:
    out: List[ast.Stmt] = []
    pending_lock: Optional[ast.LockStmt] = None
    pending_alloc: Optional[ast.AllocateStmt] = None
    last_loop: Optional[ast.Stmt] = None

    def require_no_pending(line: int) -> None:
        pending = pending_lock or pending_alloc
        if pending is not None:
            raise SemanticError(
                "directive does not immediately precede a loop",
                pending.line if pending.line else line,
            )

    for stmt in stmts:
        if isinstance(stmt, ast.LockStmt):
            if pending_lock is not None or pending_alloc is not None:
                raise SemanticError(
                    "LOCK must be the first directive before a loop", stmt.line
                )
            pending_lock = stmt
            last_loop = None
        elif isinstance(stmt, ast.AllocateStmt):
            if pending_alloc is not None:
                raise SemanticError(
                    "two ALLOCATE directives before one loop", stmt.line
                )
            pending_alloc = stmt
            last_loop = None
        elif isinstance(stmt, ast.UnlockStmt):
            require_no_pending(stmt.line)
            if last_loop is None:
                raise SemanticError(
                    "UNLOCK does not immediately follow a loop", stmt.line
                )
            loop_id = last_loop.loop_id
            if loop_id in plan.unlocks_after:
                raise SemanticError(
                    f"loop already has an UNLOCK at line "
                    f"{last_loop.line}",
                    stmt.line,
                )
            plan.unlocks_after[loop_id] = UnlockDirective(
                loop_id=loop_id, arrays=tuple(stmt.arrays)
            )
            last_loop = None
        elif isinstance(stmt, (ast.DoLoop, ast.WhileLoop)):
            if pending_lock is not None:
                try:
                    plan.locks_before[stmt.loop_id] = LockDirective(
                        loop_id=stmt.loop_id,
                        priority_index=pending_lock.priority_index,
                        arrays=tuple(pending_lock.arrays),
                    )
                except ValueError as err:
                    raise _model_error(err, pending_lock.line) from None
                pending_lock = None
            if pending_alloc is not None:
                try:
                    plan.allocates[stmt.loop_id] = AllocateDirective(
                        loop_id=stmt.loop_id,
                        requests=tuple(
                            AllocateRequest(priority_index=pi, pages=x)
                            for pi, x in pending_alloc.requests
                        ),
                    )
                except ValueError as err:
                    raise _model_error(err, pending_alloc.line) from None
                pending_alloc = None
            _extract_block(stmt.body, plan)
            out.append(stmt)
            last_loop = stmt
        else:
            require_no_pending(stmt.line)
            if isinstance(stmt, ast.IfBlock):
                for _cond, body in stmt.branches:
                    _extract_block(body, plan)
            out.append(stmt)
            last_loop = None
    require_no_pending(stmts[-1].line if stmts else 0)
    stmts[:] = out


# -- source-level entry points ----------------------------------------------


def parse_instrumented(
    source: str,
) -> Tuple[ast.Program, InstrumentationPlan]:
    """Parse an instrumented source into ``(program, plan)``.

    The returned program carries no directive statements — it is exactly
    what :func:`~repro.frontend.parser.parse_source` would produce for
    the un-instrumented text, so traces generated from it line up with
    the plan's loop ids.  Plain sources parse to an empty plan.
    """
    program = parse_source(source, allow_directives=True)
    plan = extract_plan(program)
    return program, plan


def check_instrumented_roundtrip(
    program: ast.Program, plan: InstrumentationPlan
) -> List[str]:
    """Verify render → parse → render is a fixed point.

    Returns a list of human-readable problems (empty when the round
    trip holds).  The static checker runs this before reporting on an
    instrumented rendering so every span it prints is guaranteed to
    exist in the canonical listing; the oracle runs it on every fuzzed
    program and plan variant.
    """
    from repro.directives.render import render_instrumented

    problems: List[str] = []
    text = render_instrumented(program, plan)
    try:
        reparsed, recovered = parse_instrumented(text)
    except Exception as err:  # noqa: BLE001 - any failure is the finding
        return [f"instrumented rendering fails to parse: {err}"]
    if recovered != plan:
        problems.append("plan does not survive the instrumented round trip")
    second = render_instrumented(reparsed, recovered)
    if second != text:
        problems.append("instrumented rendering is not a fixed point")
    return problems
