"""Algorithm 1 (Figure 3): inserting ALLOCATE directives.

A single top-down walk over the program maintains the argument list of
the current memory directive as a stack: entering a loop appends its
``(PI, X)`` pair; leaving a loop deletes it ("DELETE last two elements
of the argument list" in the paper's list representation).  The MD
inserted before a loop therefore carries the pairs of *all* enclosing
loops plus its own — "The arguments of ALLOCATE at some level λ are
carried out at all subsequent levels > λ", which lets requests denied
for lack of space be retried at inner levels.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.locality import LocalityAnalysis
from repro.analysis.looptree import LoopNode
from repro.directives.model import AllocateDirective, AllocateRequest


def insert_allocate_directives(
    analysis: LocalityAnalysis,
) -> Dict[int, AllocateDirective]:
    """Run Algorithm 1 over the analyzed program.

    Returns a map from ``loop_id`` to the ALLOCATE directive inserted
    right before that loop.  Request sizes along one directive are made
    non-increasing (outer ≥ inner) by raising an outer request to the
    largest inner request below it: while the inner loop runs, the
    program needs at least that much memory, so an outer-level grant must
    cover it.  (The paper asserts ``X1 ≥ X2 ≥ …`` as an invariant of the
    directive; the raise makes the invariant hold even when the calculus
    sizes an inner locality larger than an enclosing estimate, e.g. a
    conservatively-sized column walk.)
    """
    directives: Dict[int, AllocateDirective] = {}
    for root in analysis.tree.roots:
        _walk(root, [], analysis, directives)
    return directives


def _walk(
    node: LoopNode,
    stack: List[AllocateRequest],
    analysis: LocalityAnalysis,
    out: Dict[int, AllocateDirective],
) -> None:
    report = analysis.report_for(node.loop_id)
    stack.append(
        AllocateRequest(
            priority_index=report.priority_index, pages=report.virtual_size
        )
    )
    out[node.loop_id] = _directive_from_stack(node.loop_id, stack)
    for child in node.children:
        _walk(child, stack, analysis, out)
    stack.pop()


def _directive_from_stack(
    loop_id: int, stack: List[AllocateRequest]
) -> AllocateDirective:
    # Enforce non-increasing X outer-to-inner by a suffix maximum: an
    # outer request must be at least as large as any request inside it.
    raised: List[AllocateRequest] = []
    running_max = 0
    for request in reversed(stack):
        running_max = max(running_max, request.pages)
        raised.append(
            AllocateRequest(
                priority_index=request.priority_index, pages=running_max
            )
        )
    raised.reverse()
    return AllocateDirective(loop_id=loop_id, requests=tuple(raised))
