"""Differential-testing oracle for the fast paths.

PR 1 introduced three fast paths that must stay *element-identical* to
the reference implementations they replace: the affine trace compiler
(:mod:`repro.tracegen.compile` vs the tree-walking interpreter), the
closed-form CD replay (:mod:`repro.vm.fastsim` vs the event-driven
simulator), and the one-pass LRU/WS sweep analyzers
(:mod:`repro.vm.analyzers` vs per-parameter simulation).  The nine
bundled workloads exercise only a slice of the input space; this
package generates the rest.

* :mod:`repro.oracle.generator` — a seeded property-based generator of
  random FORTRAN DO-nests (varying dims, depth, reference order,
  triangular/strided bounds, index expressions, directive placement),
  emitted through the real frontend so parse/unparse round-trips are
  exercised too.
* :mod:`repro.oracle.harness` — the differential checks: compiled trace
  ≡ interpreted trace, fast metrics ≡ event-driven metrics, and policy
  invariants (LRU inclusion, WS window contents, CD lock balance and
  PJ-ordered release).
* :mod:`repro.oracle.shrink` — greedy source-level minimization of a
  failing program.
* :mod:`repro.oracle.runner` — the ``python -m repro verify`` driver:
  run N seeds under a time budget, shrink any failure, and write a
  reproducer (source + seed) to ``results/oracle_failures/``.
"""

from repro.oracle.generator import GeneratedCase, generate_case
from repro.oracle.harness import Divergence, check_case
from repro.oracle.runner import VerifyReport, verify
from repro.oracle.shrink import shrink_source

__all__ = [
    "Divergence",
    "GeneratedCase",
    "VerifyReport",
    "check_case",
    "generate_case",
    "shrink_source",
    "verify",
]
