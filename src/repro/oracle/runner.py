"""The ``python -m repro verify`` driver.

Runs seeds 0..N-1 (or ``--start-seed`` onward) through the generator
and the full differential battery, stops early when the time budget is
exhausted, shrinks every failure, and writes reproducers to
``results/oracle_failures/`` — ``seed<NNNN>-<check>.f`` (the minimized
source) plus a ``.json`` sidecar with the seed, the check class, the
divergence details, and the original un-shrunk source, so one command
replays the exact failure:

    python -m repro verify --seeds 1 --start-seed <NNNN>
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional

from repro.frontend.errors import FrontendError
from repro.oracle import harness
from repro.oracle.generator import generate_case
from repro.oracle.shrink import shrink_source

__all__ = ["FailureRecord", "VerifyReport", "verify"]

DEFAULT_FAILURE_DIR = Path("results") / "oracle_failures"


@dataclass
class FailureRecord:
    """One divergent seed, with its minimized reproducer."""

    seed: int
    check: str
    detail: str
    source: str
    shrunk_source: str
    paths: List[str] = field(default_factory=list)


@dataclass
class VerifyReport:
    seeds_run: int = 0
    elapsed: float = 0.0
    budget_exhausted: bool = False
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        state = "OK" if self.ok else f"{len(self.failures)} DIVERGENCE(S)"
        extra = " (time budget reached)" if self.budget_exhausted else ""
        return (
            f"oracle: {self.seeds_run} seed(s) in {self.elapsed:.1f}s{extra} "
            f"— {state}"
        )


def _check_class(check: str) -> str:
    """'metric-cd' -> 'metric': shrinking pins the class, not the leaf."""
    return check.split("-", 1)[0]


def _write_reproducer(out_dir: Path, record: FailureRecord) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = f"seed{record.seed:06d}-{_check_class(record.check)}"
    src_path = out_dir / f"{stem}.f"
    meta_path = out_dir / f"{stem}.json"
    src_path.write_text(record.shrunk_source)
    meta_path.write_text(
        json.dumps(
            {
                "seed": record.seed,
                "check": record.check,
                "detail": record.detail,
                "original_source": record.source,
                "replay": "python -m repro verify --seeds 1 "
                f"--start-seed {record.seed}",
            },
            indent=2,
        )
        + "\n"
    )
    record.paths = [str(src_path), str(meta_path)]


def verify(
    seeds: int = 50,
    time_budget: Optional[float] = None,
    start_seed: int = 0,
    out_dir: Optional[Path] = None,
    shrink: bool = True,
    deep: bool = True,
    engine: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> VerifyReport:
    """Run the differential oracle over ``seeds`` seeds.

    ``time_budget`` (seconds) stops cleanly between seeds — always at
    least one seed runs.  Failures are shrunk (bounded work) and
    written to ``out_dir`` (default ``results/oracle_failures/``).
    ``engine=True`` first runs the sweep-engine self-checks
    (``engine-*``) — chaos injection, ledger round-trip, cache healing
    — and reports their divergences without reproducer files (there is
    no generated program to shrink; ``seed`` is recorded as ``-1``).
    """
    out_dir = DEFAULT_FAILURE_DIR if out_dir is None else Path(out_dir)
    report = VerifyReport()
    t0 = time.perf_counter()
    say = progress or (lambda _msg: None)
    if engine:
        from repro.oracle.engine_checks import check_engine

        say("  engine self-checks (chaos, ledger, cache healing)")
        for divergence in check_engine():
            say(f"  engine: {divergence}")
            report.failures.append(
                FailureRecord(
                    seed=-1,
                    check=divergence.check,
                    detail=divergence.detail,
                    source="",
                    shrunk_source="",
                )
            )
    for seed in range(start_seed, start_seed + seeds):
        if (
            time_budget is not None
            and report.seeds_run > 0
            and time.perf_counter() - t0 > time_budget
        ):
            report.budget_exhausted = True
            break
        try:
            case = generate_case(seed)
        except FrontendError as err:
            # A generator program the frontend rejects is itself a bug.
            record = FailureRecord(
                seed=seed,
                check="trace-generate",
                detail=f"generated source failed to parse: {err}",
                source="",
                shrunk_source="",
            )
            report.failures.append(record)
            report.seeds_run += 1
            continue
        divergences = harness.check_case(case, deep=deep)
        report.seeds_run += 1
        if not divergences:
            if report.seeds_run % 25 == 0:
                say(f"  {report.seeds_run} seeds, no divergence")
            continue
        first = divergences[0]
        say(f"  seed {seed}: {first}")
        shrunk = case.source
        if shrink:
            wanted = _check_class(first.check)

            def still_failing(candidate: str) -> bool:
                found = harness.check_source(candidate, deep=deep)
                return any(_check_class(d.check) == wanted for d in found)

            shrunk = shrink_source(case.source, still_failing)
        record = FailureRecord(
            seed=seed,
            check=first.check,
            detail="; ".join(str(d) for d in divergences[:5]),
            source=case.source,
            shrunk_source=shrunk,
        )
        _write_reproducer(out_dir, record)
        say(f"  reproducer: {record.paths[0]}")
        report.failures.append(record)
    report.elapsed = time.perf_counter() - t0
    return report
