"""Greedy source-level minimization of a failing program.

Mini-FORTRAN is line-oriented, so shrinking works on lines: drop whole
DO/IF blocks, drop single executable statements, and halve integer
literals (dimensions, loop bounds).  A candidate is accepted when it
still parses *and* still exhibits a divergence under the caller's
predicate; the loop repeats until no candidate helps.  The result is
the small reproducer written next to the failing seed.
"""

from __future__ import annotations

import re
from typing import Callable, Iterator, List, Tuple

__all__ = ["shrink_source"]

_BLOCK_OPEN = re.compile(r"^\s*(DO\b|IF\s*\(.*\)\s*THEN\b)", re.IGNORECASE)
_BLOCK_CLOSE = re.compile(r"^\s*(ENDDO|ENDIF|\d+\s+CONTINUE)\b", re.IGNORECASE)
_STRUCTURAL = re.compile(
    r"^\s*(PROGRAM|END\b|ENDDO|ENDIF|ELSE|DIMENSION|DATA|DO\b|IF\s*\(.*\)\s*THEN)",
    re.IGNORECASE,
)
_INT_LITERAL = re.compile(r"\b([3-9]|[1-9]\d+)\b")


def _block_spans(lines: List[str]) -> List[range]:
    """Line spans of every DO/IF-THEN block (header through its end)."""
    spans: List[range] = []
    stack: List[int] = []
    for i, line in enumerate(lines):
        if _BLOCK_OPEN.match(line):
            stack.append(i)
        elif _BLOCK_CLOSE.match(line) and stack:
            start = stack.pop()
            spans.append(range(start, i + 1))
    return spans


def _candidates(source: str) -> Iterator[Tuple[str, str]]:
    """(kind, candidate) pairs; ``kind`` is 'delete' or 'halve'."""
    lines = source.splitlines()
    # 1. whole blocks, outermost (largest) first
    for span in sorted(_block_spans(lines), key=len, reverse=True):
        kept = [ln for i, ln in enumerate(lines) if i not in span]
        yield "delete", "\n".join(kept) + "\n"
    # 2. single executable statements
    for i, line in enumerate(lines):
        if not line.strip() or _STRUCTURAL.match(line):
            continue
        kept = lines[:i] + lines[i + 1 :]
        yield "delete", "\n".join(kept) + "\n"
    # 3. halve integer literals (dims, bounds, constants)
    for i, line in enumerate(lines):
        for match in _INT_LITERAL.finditer(line):
            value = int(match.group(0))
            smaller = max(2, value // 2)
            if smaller == value:
                continue
            new_line = line[: match.start()] + str(smaller) + line[match.end() :]
            yield "halve", "\n".join(lines[:i] + [new_line] + lines[i + 1 :]) + "\n"


def shrink_source(
    source: str,
    still_failing: Callable[[str], bool],
    max_probes: int = 400,
) -> str:
    """Return a smaller source that still satisfies ``still_failing``.

    ``still_failing`` must return True when the candidate still
    exhibits the original divergence (callers typically pin the check
    class so shrinking cannot wander onto an unrelated failure).
    ``max_probes`` bounds the total number of predicate evaluations.
    """
    probes = 0
    improved = True
    while improved and probes < max_probes:
        improved = False
        for kind, candidate in _candidates(source):
            # Deletions must strictly shorten the text; literal halvings
            # may keep its length (6 -> 3) but strictly decrease the
            # value, so neither kind can cycle.
            if len(candidate) > len(source) or (
                kind == "delete" and len(candidate) == len(source)
            ):
                continue
            probes += 1
            if probes > max_probes:
                break
            try:
                if still_failing(candidate):
                    source = candidate
                    improved = True
                    break
            except Exception:
                continue  # a broken candidate is simply not a reproducer
    return source
