"""Differential checks: fast path ≡ slow path, plus policy invariants.

Four check classes, mirroring the fast paths the repo depends on (each
identified by the ``check`` field of a :class:`Divergence`):

* ``trace-*`` — the affine trace compiler against the pure interpreter
  (element-for-element pages, directive events, truncation), plus the
  frontend parse → unparse → parse round-trip;
* ``metric-*`` — the closed-form CD replay and the one-pass LRU/WS
  analyzers against the event-driven simulator;
* ``invariant-*`` — policy laws that hold independently of any fast
  path: the LRU inclusion property across memory sizes, WS window
  contents, CD's LRU-prefix residency, and CD lock bookkeeping
  (balance at exit, PJ-ordered forced release);
* ``event-*`` — conservation laws over the observability event stream:
  fault events equal the PF count, space-time is reconstructible from
  resident-set samples, lock pins balance, residency never exceeds a
  memory ceiling, and the closed-form replay synthesizes the same
  fault stream as the event-driven simulator;
* ``lint-*`` — static-checker agreement: generated programs with
  Algorithm-1/2 plans lint clean at error level, every dynamic
  directive event traces back to a static directive, and a clean
  static lock balance (rule CD103) implies an exactly balanced
  dynamic pin ledger;
* ``stream-*`` — the one-pass streaming engine against the per-policy
  event-driven replays: metrics (PF, MEM, ST) across chunk sizes, the
  per-fault event stream (time, page, residency), and the sharded
  on-disk round trip;
* ``symbolic-*`` — the trace-free locality engine: its flat trace, the
  element-wise-verified run journal, the weighted LRU/WS analyzers,
  the CD structure walk, and both minimum-space-time searches against
  the exact references.

All comparisons are exact — both sides compute in integer or identical
float arithmetic, so any difference at all is a real divergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.directives import check_instrumented_roundtrip, instrument_program
from repro.frontend import ast
from repro.frontend.errors import FrontendError
from repro.frontend.parser import parse_source
from repro.frontend.unparse import unparse_program
from repro.tracegen.events import DirectiveKind, ReferenceTrace
from repro.tracegen.interpreter import generate_trace
from repro.vm import fastsim
from repro.vm.analyzers import LRUSweep, WSSweep
from repro.vm.policies import CDConfig, CDPolicy, LRUPolicy, WorkingSetPolicy
from repro.vm.simulator import simulate

__all__ = [
    "Divergence",
    "check_case",
    "check_lint",
    "check_program",
    "check_static",
    "check_symbolic",
]

#: reference cap for generated programs — also exercises truncation
#: equivalence when a case overruns it
_MAX_REFERENCES = 200_000


@dataclass
class Divergence:
    """One observed disagreement between a fast path and its reference."""

    check: str  # e.g. "trace-pages", "metric-cd", "invariant-ws"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.check}] {self.detail}"


def _result_fields(result) -> Tuple:
    return (
        result.page_faults,
        result.references,
        result.mem_average,
        result.space_time,
    )


# -- check class 1: trace equivalence ----------------------------------------


def _trace_pair(program, plan, max_references):
    """(slow, fast) traces, or (exception, exception) when both raise."""
    outcomes = []
    for compiled in (False, True):
        try:
            trace = generate_trace(
                program,
                plan=plan,
                compile_nests=compiled,
                max_references=max_references,
            )
            outcomes.append(("ok", trace))
        except Exception as err:  # any raise is data: the paths must agree
            outcomes.append(("error", f"{type(err).__name__}: {err}"))
    return outcomes


def check_trace_equivalence(
    program: ast.Program, plan, label: str, max_references: int = _MAX_REFERENCES
) -> Tuple[List[Divergence], Optional[ReferenceTrace]]:
    """Compiled trace ≡ interpreted trace, element for element."""
    out: List[Divergence] = []
    (skind, slow), (fkind, fast) = _trace_pair(program, plan, max_references)
    if skind != fkind:
        out.append(
            Divergence(
                "trace-outcome",
                f"{label}: interpreter {skind} ({slow if skind == 'error' else ''})"
                f" but compiler {fkind} ({fast if fkind == 'error' else ''})",
            )
        )
        return out, None
    if skind == "error":
        if slow != fast:
            out.append(
                Divergence(
                    "trace-outcome",
                    f"{label}: error mismatch: {slow!r} vs {fast!r}",
                )
            )
        return out, None
    if slow.truncated != fast.truncated:
        out.append(
            Divergence(
                "trace-truncation",
                f"{label}: truncated {slow.truncated} vs {fast.truncated}",
            )
        )
    if len(slow.pages) != len(fast.pages):
        out.append(
            Divergence(
                "trace-pages",
                f"{label}: length {len(slow.pages)} vs {len(fast.pages)}",
            )
        )
    else:
        diff = np.nonzero(slow.pages != fast.pages)[0]
        if len(diff):
            i = int(diff[0])
            out.append(
                Divergence(
                    "trace-pages",
                    f"{label}: first page mismatch at {i}: "
                    f"{int(slow.pages[i])} vs {int(fast.pages[i])} "
                    f"({len(diff)} total)",
                )
            )
    if slow.array_pages != fast.array_pages:
        out.append(Divergence("trace-layout", f"{label}: array layouts differ"))
    if len(slow.directives) != len(fast.directives):
        out.append(
            Divergence(
                "trace-directives",
                f"{label}: {len(slow.directives)} vs "
                f"{len(fast.directives)} directive events",
            )
        )
    else:
        for i, (a, b) in enumerate(zip(slow.directives, fast.directives)):
            if (
                a.position != b.position
                or a.kind is not b.kind
                or a.site != b.site
                or tuple(a.requests) != tuple(b.requests)
                or a.lock_pages != b.lock_pages
            ):
                out.append(
                    Divergence(
                        "trace-directives",
                        f"{label}: directive {i} differs: {a} vs {b}",
                    )
                )
                break
    return out, (slow if skind == "ok" else None)


def check_roundtrip(program: ast.Program) -> List[Divergence]:
    """unparse → parse → unparse must be a fixed point, and the
    re-parsed program must produce the identical trace."""
    text1 = unparse_program(program)
    try:
        reparsed = parse_source(text1)
    except FrontendError as err:
        return [Divergence("trace-roundtrip", f"unparse output fails to parse: {err}")]
    text2 = unparse_program(reparsed)
    if text1 != text2:
        return [Divergence("trace-roundtrip", "unparse/parse not a fixed point")]
    t1 = generate_trace(program, compile_nests=False)
    t2 = generate_trace(reparsed, compile_nests=False)
    if len(t1.pages) != len(t2.pages) or (t1.pages != t2.pages).any():
        return [
            Divergence(
                "trace-roundtrip", "re-parsed program produces a different trace"
            )
        ]
    return []


# -- check class 2: metric equivalence ---------------------------------------


def _frames_samples(v: int) -> List[int]:
    return sorted({1, 2, 3, max(1, v // 2), max(1, v - 1), v, v + 2})


def _tau_samples(n: int) -> List[int]:
    return sorted({1, 2, 5, 13, max(1, n // 3), max(1, n // 2), n + 5})


def check_metrics(trace: ReferenceTrace, label: str) -> List[Divergence]:
    """Analyzers and closed-form CD vs the event-driven simulator."""
    out: List[Divergence] = []
    n = len(trace.pages)
    lru = LRUSweep(trace)
    for frames in _frames_samples(max(lru.max_useful_frames, 1)):
        fast = lru.result(frames)
        slow = simulate(trace, LRUPolicy(frames=frames))
        if _result_fields(fast) != _result_fields(slow):
            out.append(
                Divergence(
                    "metric-lru",
                    f"{label}: frames={frames}: sweep "
                    f"{_result_fields(fast)} vs simulator {_result_fields(slow)}",
                )
            )
    ws = WSSweep(trace)
    for tau in _tau_samples(max(n, 1)):
        fast = ws.result(tau)
        slow = simulate(trace, WorkingSetPolicy(tau=tau))
        if _result_fields(fast) != _result_fields(slow):
            out.append(
                Divergence(
                    "metric-ws",
                    f"{label}: tau={tau}: sweep "
                    f"{_result_fields(fast)} vs simulator {_result_fields(slow)}",
                )
            )
    has_locks = any(d.kind is DirectiveKind.LOCK for d in trace.directives)
    configs = [
        CDConfig(),
        CDConfig(pi_cap=1),
        CDConfig(pi_cap=2),
        CDConfig(min_allocation=3),
        CDConfig(honor_locks=False),
    ]
    for config in configs:
        applicable = fastsim.cd_fast_applicable(trace, config)
        if applicable != (
            config.memory_limit is None and not (config.honor_locks and has_locks)
        ):
            out.append(
                Divergence(
                    "metric-cd",
                    f"{label}: cd_fast_applicable={applicable} "
                    f"inconsistent for {config}",
                )
            )
            continue
        if not applicable:
            continue
        fast = fastsim.simulate_cd_fast(trace, config, distances=lru._distances)
        slow = simulate(trace, CDPolicy(config))
        if _result_fields(fast) != _result_fields(slow) or fast.swaps != slow.swaps:
            out.append(
                Divergence(
                    "metric-cd",
                    f"{label}: {config.label()}: fast "
                    f"{_result_fields(fast)} vs simulator {_result_fields(slow)}",
                )
            )
    return out


# -- check class 3: policy invariants ----------------------------------------


def _drive(trace: ReferenceTrace, policy, with_directives: bool = True):
    """Step a policy through the trace, yielding it after each access."""
    policy.reset()
    directives = trace.directives if with_directives else []
    event_index = 0
    for time in range(len(trace.pages)):
        while (
            event_index < len(directives)
            and directives[event_index].position <= time
        ):
            policy.on_directive(directives[event_index])
            event_index += 1
        fault = policy.access(int(trace.pages[time]), time)
        yield time, fault, policy
    while event_index < len(directives):
        policy.on_directive(directives[event_index])
        event_index += 1


def check_lru_inclusion(trace: ReferenceTrace, label: str) -> List[Divergence]:
    """The stack property: LRU(m) resident ⊆ LRU(m+1) resident at every
    instant, so faults at m+1 are a subset of faults at m."""
    out: List[Divergence] = []
    v = len(set(trace.pages.tolist()))
    for m in sorted({2, max(2, v // 2)}):
        small = LRUPolicy(frames=m)
        big = LRUPolicy(frames=m + 1)
        stepper = zip(_drive(trace, small), _drive(trace, big))
        for (t, fault_s, _), (_, fault_b, _) in stepper:
            if fault_b and not fault_s:
                out.append(
                    Divergence(
                        "invariant-lru",
                        f"{label}: t={t}: fault at {m + 1} frames "
                        f"but not at {m} (inclusion violated)",
                    )
                )
                return out
            if not set(small._resident).issubset(big._resident):
                out.append(
                    Divergence(
                        "invariant-lru",
                        f"{label}: t={t}: LRU({m}) resident set not "
                        f"contained in LRU({m + 1})",
                    )
                )
                return out
    return out


def check_ws_window(trace: ReferenceTrace, label: str) -> List[Divergence]:
    """WS resident set == exact contents of the trailing-τ window."""
    out: List[Divergence] = []
    pages = trace.pages.tolist()
    for tau in (3, 17):
        policy = WorkingSetPolicy(tau=tau)
        window_count: Dict[int, int] = {}
        for t, fault, _ in _drive(trace, policy, with_directives=False):
            page = pages[t]
            window_count[page] = window_count.get(page, 0) + 1
            if t >= tau:
                old = pages[t - tau]
                window_count[old] -= 1
                if not window_count[old]:
                    del window_count[old]
            expected_fault = page not in set(pages[max(0, t - tau) : t])
            if fault != expected_fault:
                out.append(
                    Divergence(
                        "invariant-ws",
                        f"{label}: tau={tau} t={t}: fault={fault}, "
                        f"window says {expected_fault}",
                    )
                )
                return out
            if set(policy._last_ref) != set(window_count):
                out.append(
                    Divergence(
                        "invariant-ws",
                        f"{label}: tau={tau} t={t}: resident set is not "
                        "W(t, tau)",
                    )
                )
                return out
    return out


def check_cd_lru_prefix(trace: ReferenceTrace, label: str) -> List[Divergence]:
    """Lock-free, no-ceiling CD must hold exactly the top-r of the
    global LRU stack — the law the closed-form replay is built on."""
    if any(d.kind is DirectiveKind.LOCK for d in trace.directives):
        return []
    out: List[Divergence] = []
    policy = CDPolicy(CDConfig())
    stack: List[int] = []  # LRU order, most recent last
    for t, _fault, _ in _drive(trace, policy):
        page = int(trace.pages[t])
        if page in stack:
            stack.remove(page)
        stack.append(page)
        r = policy.resident_size
        if set(policy._resident) != set(stack[-r:]):
            out.append(
                Divergence(
                    "invariant-cd",
                    f"{label}: t={t}: CD resident set is not the "
                    f"top-{r} of the LRU stack",
                )
            )
            return out
        if r > policy.allocation_target:
            out.append(
                Divergence(
                    "invariant-cd",
                    f"{label}: t={t}: residency {r} exceeds target "
                    f"{policy.allocation_target}",
                )
            )
            return out
    return out


class _AuditedCD(CDPolicy):
    """CD with forced lock releases audited for PJ order."""

    def __init__(self, config):
        super().__init__(config)
        self.release_violations: List[str] = []

    def _release_highest_pj_site(self) -> bool:
        if self._site_pj:
            chosen = max(self._site_pj, key=lambda s: (self._site_pj[s], s))
            top = max(self._site_pj.values())
            if self._site_pj[chosen] != top:  # pragma: no cover - safety net
                self.release_violations.append(
                    f"released PJ {self._site_pj[chosen]} while PJ {top} active"
                )
        before = dict(self._site_pj)
        released = super()._release_highest_pj_site()
        if released:
            gone = set(before) - set(self._site_pj)
            for site in gone:
                if before[site] != max(before.values()):
                    self.release_violations.append(
                        f"forced release of site {site} (PJ {before[site]}) "
                        f"before PJ {max(before.values())}"
                    )
        return released


def check_cd_locks(trace: ReferenceTrace, label: str) -> List[Divergence]:
    """Lock bookkeeping: pins balance to zero at program exit; every
    UNLOCK covers pages some LOCK actually pinned; under memory
    pressure forced releases go highest-PJ-first."""
    out: List[Divergence] = []
    lock_events = [d for d in trace.directives if d.kind is DirectiveKind.LOCK]
    if not lock_events:
        return out
    positions = [d.position for d in trace.directives]
    if positions != sorted(positions):
        out.append(
            Divergence("invariant-cd", f"{label}: directive positions not monotone")
        )
    ever_locked = set()
    for d in lock_events:
        ever_locked.update(d.lock_pages)
    for d in trace.directives:
        if d.kind is DirectiveKind.UNLOCK and not set(d.lock_pages) <= ever_locked:
            out.append(
                Divergence(
                    "invariant-cd",
                    f"{label}: UNLOCK at {d.position} names never-locked pages",
                )
            )
    total = trace.total_pages
    for d in lock_events:
        if any(p < 0 or p >= total for p in d.lock_pages):
            out.append(
                Divergence(
                    "invariant-cd",
                    f"{label}: LOCK at {d.position} pins an out-of-range page",
                )
            )
    policy = CDPolicy(CDConfig(honor_locks=True))
    simulate(trace, policy)
    if policy.locked_page_count != 0:
        out.append(
            Divergence(
                "invariant-cd",
                f"{label}: {policy.locked_page_count} pages still pinned "
                "after the final UNLOCK (lock/unlock imbalance)",
            )
        )
    # Pressure run: a tiny ceiling forces PJ-ordered pin releases.
    audited = _AuditedCD(CDConfig(honor_locks=True, memory_limit=2))
    simulate(trace, audited)
    for violation in audited.release_violations:
        out.append(Divergence("invariant-cd", f"{label}: {violation}"))
    return out


# -- check class 4: event-stream conservation ---------------------------------


def check_event_conservation(
    trace: ReferenceTrace, label: str
) -> List[Divergence]:
    """Conservation laws the event stream must satisfy exactly.

    With ``sample_interval=1`` the stream carries one resident-set
    sample per reference, so the simulator's aggregate metrics are
    *redundant* with the events — any bookkeeping drift between the
    two shows up as an inequality here.
    """
    from repro.obs import RingBufferSink, Tracer
    from repro.obs.events import (
        AllocateGrant,
        Fault,
        ForcedRelease,
        Lock,
        ResidentSample,
        Unlock,
    )

    out: List[Divergence] = []
    slow_faults = None
    for config in (CDConfig(), CDConfig(memory_limit=3)):
        ring = RingBufferSink()
        result = simulate(
            trace, CDPolicy(config), tracer=Tracer(ring), sample_interval=1
        )
        events = ring.events
        faults = [e for e in events if isinstance(e, Fault)]
        tag = f"{label}/{config.label()}"
        if len(faults) != result.page_faults:
            out.append(
                Divergence(
                    "event-faults",
                    f"{tag}: {len(faults)} Fault events but "
                    f"PF={result.page_faults}",
                )
            )
        if config.memory_limit is None:
            slow_faults = [(e.time, e.page) for e in faults]
        reconstructed = sum(
            e.resident for e in events if isinstance(e, ResidentSample)
        ) + result.fault_service * sum(e.resident for e in faults)
        if reconstructed != result.space_time:
            out.append(
                Divergence(
                    "event-st",
                    f"{tag}: ST from events {reconstructed} != "
                    f"simulator ST {result.space_time}",
                )
            )
        pinned = sum(len(e.pages) for e in events if isinstance(e, Lock))
        unpinned = sum(
            len(e.pages)
            for e in events
            if isinstance(e, (Unlock, ForcedRelease))
        )
        if pinned != unpinned:
            out.append(
                Divergence(
                    "event-locks",
                    f"{tag}: {pinned} pages pinned but {unpinned} "
                    "released (ledger imbalance)",
                )
            )
        limit = config.memory_limit
        if limit is not None:
            over = [
                e
                for e in events
                if isinstance(e, (Fault, ResidentSample)) and e.resident > limit
            ]
            over_grant = [
                e
                for e in events
                if isinstance(e, AllocateGrant) and e.pages > limit
            ]
            if over or over_grant:
                out.append(
                    Divergence(
                        "event-grants",
                        f"{tag}: residency/grant exceeds the memory "
                        f"limit {limit} ({len(over)} samples, "
                        f"{len(over_grant)} grants)",
                    )
                )
    config = CDConfig()
    if slow_faults is not None and fastsim.cd_fast_applicable(trace, config):
        ring = RingBufferSink()
        fastsim.simulate_cd_fast(trace, config, tracer=Tracer(ring))
        fast_faults = [
            (e.time, e.page) for e in ring.events if isinstance(e, Fault)
        ]
        if fast_faults != slow_faults:
            i = next(
                (
                    k
                    for k, (a, b) in enumerate(zip(fast_faults, slow_faults))
                    if a != b
                ),
                min(len(fast_faults), len(slow_faults)),
            )
            out.append(
                Divergence(
                    "event-fastsim",
                    f"{label}: synthesized fault stream diverges at "
                    f"index {i}: fast {len(fast_faults)} faults vs "
                    f"simulator {len(slow_faults)}",
                )
            )
    return out


# -- check class 6: streaming-engine equivalence -------------------------------


def _stream_requests(trace: ReferenceTrace):
    """A representative request battery for one trace, with the exact
    event-driven reference result for each."""
    from repro.vm.policies import FIFOPolicy
    from repro.vm.stream import StreamRequest, cd_streamable

    v = max(1, trace.distinct_pages)
    n = max(1, len(trace.pages))
    pairs = []
    lru = LRUSweep(trace)
    for frames in sorted({1, 2, max(1, v // 2), v}):
        pairs.append((StreamRequest.lru(frames), lru.result(frames)))
    for frames in sorted({1, 3, max(1, v // 2)}):
        pairs.append(
            (
                StreamRequest.fifo(frames),
                simulate(trace, FIFOPolicy(frames=frames)),
            )
        )
    ws = WSSweep(trace)
    for tau in sorted({1, 3, max(1, n // 3), n + 5}):
        pairs.append((StreamRequest.ws(tau), ws.result(tau)))
    for config in (CDConfig(), CDConfig(pi_cap=1), CDConfig(min_allocation=3)):
        if cd_streamable(config, trace.directives):
            pairs.append(
                (
                    StreamRequest.cd(config),
                    fastsim.simulate_cd_fast(trace, config),
                )
            )
    return pairs


def check_stream_metrics(
    trace: ReferenceTrace, label: str
) -> List[Divergence]:
    """One-pass streaming metrics ≡ event-driven, at several chunkings."""
    from repro.vm.stream import StreamEngine

    out: List[Divergence] = []
    n = len(trace.pages)
    pairs = _stream_requests(trace)
    requests = [rq for rq, _ in pairs]
    for chunk_size in sorted({max(1, n), 257, 64}):
        engine = StreamEngine(requests, backend="numpy", chunk_size=chunk_size)
        for (request, want), got in zip(pairs, engine.run(trace)):
            if _result_fields(got) != _result_fields(want):
                out.append(
                    Divergence(
                        "stream-metrics",
                        f"{label}: {request.label()} chunk={chunk_size}: "
                        f"stream {_result_fields(got)} vs reference "
                        f"{_result_fields(want)}",
                    )
                )
    return out


def check_stream_events(
    trace: ReferenceTrace, label: str
) -> List[Divergence]:
    """The engine's per-fault event stream (time, page, post-fault
    residency) ≡ the event-driven simulator's, chunking included."""
    from repro.obs import RingBufferSink, Tracer
    from repro.obs.events import Fault
    from repro.vm.stream import StreamEngine, StreamRequest, cd_streamable

    out: List[Divergence] = []
    v = max(1, trace.distinct_pages)
    runs = [
        (StreamRequest.lru(max(2, v // 2)), LRUPolicy(frames=max(2, v // 2))),
        (StreamRequest.ws(7), WorkingSetPolicy(tau=7)),
    ]
    if cd_streamable(CDConfig(), trace.directives):
        runs.append((StreamRequest.cd(CDConfig()), CDPolicy(CDConfig())))
    for request, policy in runs:
        ring = RingBufferSink()
        simulate(trace, policy, tracer=Tracer(ring))
        want = [
            (e.time, e.page, e.resident)
            for e in ring.events
            if isinstance(e, Fault)
        ]
        ring = RingBufferSink()
        engine = StreamEngine(
            [request], backend="numpy", chunk_size=193, tracer=Tracer(ring)
        )
        engine.run(trace)
        got = [
            (e.time, e.page, e.resident)
            for e in ring.events
            if isinstance(e, Fault)
        ]
        if got != want:
            i = next(
                (k for k, (a, b) in enumerate(zip(got, want)) if a != b),
                min(len(got), len(want)),
            )
            out.append(
                Divergence(
                    "stream-events",
                    f"{label}: {request.label()}: fault stream diverges at "
                    f"index {i}: stream {len(got)} faults vs event-driven "
                    f"{len(want)}",
                )
            )
    return out


def check_stream_sharded(
    trace: ReferenceTrace, label: str
) -> List[Divergence]:
    """Sharded round trip: pages/directives survive, and streaming off
    disk (chunks straddling shard boundaries) matches the in-RAM run."""
    import tempfile

    from repro.tracegen.io import open_sharded_trace, save_trace_sharded
    from repro.vm.stream import StreamEngine

    out: List[Divergence] = []
    n = len(trace.pages)
    with tempfile.TemporaryDirectory(prefix="oracle-shard-") as tmp:
        shard = max(1, min(997, n // 3 + 1))
        save_trace_sharded(trace, tmp, shard_size=shard)
        reloaded = open_sharded_trace(tmp)
        back = reloaded.to_reference_trace()
        if len(back.pages) != n or (n and (back.pages != trace.pages).any()):
            out.append(
                Divergence(
                    "stream-sharded",
                    f"{label}: sharded round trip changed the page string",
                )
            )
            return out
        if list(back.directives) != list(trace.directives):
            out.append(
                Divergence(
                    "stream-sharded",
                    f"{label}: sharded round trip changed the directives",
                )
            )
            return out
        pairs = _stream_requests(trace)
        requests = [rq for rq, _ in pairs]
        chunk = max(1, min(shard + shard // 2, n))  # straddle shards
        engine = StreamEngine(requests, backend="numpy", chunk_size=chunk)
        for (request, want), got in zip(pairs, engine.run(reloaded)):
            if _result_fields(got) != _result_fields(want):
                out.append(
                    Divergence(
                        "stream-sharded",
                        f"{label}: {request.label()} off-disk "
                        f"{_result_fields(got)} vs reference "
                        f"{_result_fields(want)}",
                    )
                )
    return out


# -- check class 5: static checker agreement ----------------------------------


def check_lint(
    program: ast.Program, plan, trace: Optional[ReferenceTrace], label: str
) -> List[Divergence]:
    """The static checker must agree with the dynamic world.

    * ``lint-clean`` — a generated program with a plan derived by
      Algorithms 1/2 must carry zero error-level diagnostics (the rules
      re-derive each invariant independently of the insertion code);
    * ``lint-directives`` — every directive *event* in the trace must
      trace back to a directive the plan declares statically, and every
      dynamically pinned page must belong to an array the static LOCK
      names;
    * ``lint-ledger`` — when the static lock-balance rule (CD103) is
      clean, the dynamic pin ledger from the observability layer must
      balance exactly (pages pinned == pages released).
    """
    from repro.staticcheck import Severity, lint_program

    out: List[Divergence] = []
    diagnostics = lint_program(program, plan=plan)
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    for diag in errors:
        out.append(
            Divergence(
                "lint-clean",
                f"{label}: {diag.rule} [{diag.name}] line "
                f"{diag.span.line}: {diag.message}",
            )
        )
    if trace is None:
        return out
    out.extend(_check_lint_directive_agreement(plan, trace, label))
    cd103_clean = not any(d.rule == "CD103" for d in errors)
    if cd103_clean and any(
        d.kind is DirectiveKind.LOCK for d in trace.directives
    ):
        out.extend(_check_lint_ledger(trace, label))
    return out


def _check_lint_directive_agreement(
    plan, trace: ReferenceTrace, label: str
) -> List[Divergence]:
    out: List[Divergence] = []

    def array_page_set(arrays) -> set:
        pages = set()
        for name in arrays:
            first, count = trace.array_pages.get(name, (0, 0))
            pages.update(range(first, first + count))
        return pages

    for event in trace.directives:
        if event.kind is DirectiveKind.LOCK:
            static = plan.locks_before.get(event.site)
            if static is None:
                out.append(
                    Divergence(
                        "lint-directives",
                        f"{label}: dynamic LOCK at position "
                        f"{event.position} has no static LOCK before loop "
                        f"{event.site}",
                    )
                )
                continue
            allowed = array_page_set(static.arrays)
            stray = set(event.lock_pages) - allowed
            if stray:
                out.append(
                    Divergence(
                        "lint-directives",
                        f"{label}: LOCK at loop {event.site} pins pages "
                        f"{sorted(stray)} outside the statically named "
                        f"arrays {list(static.arrays)}",
                    )
                )
        elif event.kind is DirectiveKind.UNLOCK:
            static = plan.unlocks_after.get(event.site)
            if static is None:
                out.append(
                    Divergence(
                        "lint-directives",
                        f"{label}: dynamic UNLOCK at position "
                        f"{event.position} has no static UNLOCK after loop "
                        f"{event.site}",
                    )
                )
        elif event.kind is DirectiveKind.ALLOCATE:
            if event.site not in plan.allocates:
                out.append(
                    Divergence(
                        "lint-directives",
                        f"{label}: dynamic ALLOCATE at position "
                        f"{event.position} has no static ALLOCATE before "
                        f"loop {event.site}",
                    )
                )
    return out


def _check_lint_ledger(trace: ReferenceTrace, label: str) -> List[Divergence]:
    from repro.obs import RingBufferSink, Tracer
    from repro.obs.events import ForcedRelease, Lock, Unlock

    out: List[Divergence] = []
    for config in (CDConfig(honor_locks=True), CDConfig(memory_limit=3)):
        ring = RingBufferSink()
        simulate(trace, CDPolicy(config), tracer=Tracer(ring))
        pinned = sum(
            len(e.pages) for e in ring.events if isinstance(e, Lock)
        )
        released = sum(
            len(e.pages)
            for e in ring.events
            if isinstance(e, (Unlock, ForcedRelease))
        )
        if pinned != released:
            out.append(
                Divergence(
                    "lint-ledger",
                    f"{label}/{config.label()}: static lock balance is "
                    f"clean but the dynamic pin ledger pinned {pinned} "
                    f"page(s) and released {released}",
                )
            )
    return out


# -- check class: multiprogramming pool conservation -------------------------


def check_pool_conservation(
    trace: ReferenceTrace, label: str
) -> List[Divergence]:
    """The ``pool-*`` battery: load-controlled multiprogramming obeys
    its frame ledger and replays each process exactly.

    Four copies of the program (full-length and truncated, so CD
    preemption has a smaller newcomer to admit) run through
    :class:`~repro.vm.multiprog.LoadControlledPool` under knee and CD
    admission.  The emitted Admit/Suspend/Resume/Depart stream is then
    replayed independently and checked:

    * ``pool-frames``     — the ledger from events never leaves
      ``[0, total]`` and drains to zero when every job departs;
    * ``pool-admission``  — no admission ever exceeds the free pool;
    * ``pool-suspended``  — a suspended process holds zero frames
      until it is re-admitted, and releases exactly what it held;
    * ``pool-faults``     — a never-suspended process's fault count
      equals the single-process LRU replay at its granted allocation.
    """
    from repro.obs import RingBufferSink, Tracer
    from repro.obs.events import Admit, Depart, Resume, Suspend
    from repro.vm.multiprog import JobProfile, LoadControlledPool

    out: List[Divergence] = []
    if not len(trace.pages):
        return out
    full = JobProfile.from_trace(trace, name="full", max_refs=1500)
    short = JobProfile.from_trace(
        trace, name="short", max_refs=max(1, full.length // 3)
    )
    total = max(full.cd_pref_frames, full.knee_frames, 2)
    arrivals = [(0, full), (1, short), (2, full), (3, short)]
    for policy in ("knee", "cd"):
        ring = RingBufferSink()
        result = LoadControlledPool(
            arrivals,
            total_frames=total,
            policy=policy,
            tracer=Tracer(ring),
            horizon=None,
        ).run()
        tag = f"{label}/pool-{policy}"
        for violation in result.violations:
            out.append(Divergence("pool-frames", f"{tag}: {violation}"))
        if result.completed != len(arrivals):
            out.append(
                Divergence(
                    "pool-frames",
                    f"{tag}: only {result.completed}/{len(arrivals)} "
                    "jobs completed with no horizon",
                )
            )
        used = 0
        held: dict = {}
        suspended: set = set()
        ever_suspended: set = set()
        for event in ring.events:
            if isinstance(event, Admit):
                if event.frames > total - used:
                    out.append(
                        Divergence(
                            "pool-admission",
                            f"{tag}: admitted {event.proc} with "
                            f"{event.frames} frame(s) but only "
                            f"{total - used} free",
                        )
                    )
                used += event.frames
                held[event.proc] = event.frames
                suspended.discard(event.proc)
            elif isinstance(event, Suspend) and event.proc in held:
                if event.frames != held[event.proc]:
                    out.append(
                        Divergence(
                            "pool-suspended",
                            f"{tag}: {event.proc} released "
                            f"{event.frames} but held {held[event.proc]}",
                        )
                    )
                used -= event.frames
                held[event.proc] = 0
                suspended.add(event.proc)
                ever_suspended.add(event.proc)
            elif isinstance(event, Resume):
                if event.proc not in suspended:
                    out.append(
                        Divergence(
                            "pool-suspended",
                            f"{tag}: {event.proc} resumed but was "
                            "not suspended",
                        )
                    )
            elif isinstance(event, Depart):
                if event.proc in suspended:
                    out.append(
                        Divergence(
                            "pool-suspended",
                            f"{tag}: {event.proc} departed while "
                            "suspended",
                        )
                    )
                used -= event.frames
                held.pop(event.proc, None)
            if not 0 <= used <= total:
                out.append(
                    Divergence(
                        "pool-frames",
                        f"{tag}: ledger hit {used} (pool is {total}) "
                        f"after {event.kind} of {event.proc}",
                    )
                )
                break
        else:
            if used != 0:
                out.append(
                    Divergence(
                        "pool-frames",
                        f"{tag}: {used} frame(s) leaked after all "
                        "departures",
                    )
                )
        profiles = {"full": full, "short": short}
        for record in result.records:
            if record.suspensions or record.finish_time is None:
                continue
            profile = profiles[record.program]
            expected = profile.faults_at(record.allocation)
            if record.faults != expected:
                out.append(
                    Divergence(
                        "pool-faults",
                        f"{tag}: {record.name} saw {record.faults} "
                        f"fault(s) at {record.allocation} frame(s); "
                        f"single-process replay says {expected}",
                    )
                )
            if record.references != profile.length:
                out.append(
                    Divergence(
                        "pool-faults",
                        f"{tag}: {record.name} executed "
                        f"{record.references}/{profile.length} refs",
                    )
                )
    return out


# -- check class: symbolic (trace-free) engine equivalence --------------------


def check_symbolic(
    program: ast.Program,
    plan,
    trace: Optional[ReferenceTrace],
    label: str,
    max_references: int = _MAX_REFERENCES,
) -> List[Divergence]:
    """The ``symbolic-*`` battery: the trace-free locality engine
    against the exact analyzers and simulators, integer for integer.

    * ``symbolic-trace``  — :func:`generate_runtrace`'s flat trace ≡
      the interpreter's (pages, directives, layout, truncation; when
      the interpreter raises, the symbolic tier must raise the same
      error);
    * ``symbolic-runs``   — every journaled run re-verified
      element-wise (``b``-periodic, in bounds, sorted and disjoint,
      never straddling a directive position) and the collapse's kept
      weights account for every original reference;
    * ``symbolic-lru`` / ``symbolic-ws`` — the weighted analyzers ≡
      the exact sweeps at the shared frame/τ samples;
    * ``symbolic-cd``     — the structure-walk CD replay ≡ the
      closed-form fast path wherever that applies (the walk must never
      reject a detector-built journal);
    * ``symbolic-min-st`` — the full minimum-space-time searches (LRU
      and WS) return the same result, chosen parameter included.
    """
    from repro.analysis.symbolic import (
        Surrogate,
        SymbolicLRU,
        SymbolicWS,
        generate_runtrace,
        simulate_cd_symbolic,
    )

    out: List[Divergence] = []
    try:
        runtrace = generate_runtrace(
            program, plan=plan, max_references=max_references
        )
    except Exception as err:
        runtrace = None
        sym_error = f"{type(err).__name__}: {err}"
    if trace is None:
        # The interpreter raised (the caller only withholds the trace
        # on error/mismatch); the symbolic tier must raise identically.
        try:
            generate_trace(
                program,
                plan=plan,
                compile_nests=False,
                max_references=max_references,
            )
            return out  # caller-side mismatch, already reported
        except Exception as err:
            slow_error = f"{type(err).__name__}: {err}"
        if runtrace is not None:
            out.append(
                Divergence(
                    "symbolic-trace",
                    f"{label}: interpreter raised {slow_error!r} but the "
                    "symbolic tier produced a trace",
                )
            )
        elif sym_error != slow_error:
            out.append(
                Divergence(
                    "symbolic-trace",
                    f"{label}: error mismatch: interpreter {slow_error!r} "
                    f"vs symbolic {sym_error!r}",
                )
            )
        return out
    if runtrace is None:
        out.append(
            Divergence(
                "symbolic-trace",
                f"{label}: symbolic tier raised {sym_error!r} but the "
                "interpreter produced a trace",
            )
        )
        return out

    sym = runtrace.trace
    if sym.truncated != trace.truncated:
        out.append(
            Divergence(
                "symbolic-trace",
                f"{label}: truncated {trace.truncated} vs {sym.truncated}",
            )
        )
    if len(sym.pages) != len(trace.pages):
        out.append(
            Divergence(
                "symbolic-trace",
                f"{label}: length {len(trace.pages)} vs {len(sym.pages)}",
            )
        )
        return out  # analyzers below would compare different strings
    diff = np.nonzero(sym.pages != trace.pages)[0]
    if len(diff):
        i = int(diff[0])
        out.append(
            Divergence(
                "symbolic-trace",
                f"{label}: first page mismatch at {i}: "
                f"{int(trace.pages[i])} vs {int(sym.pages[i])} "
                f"({len(diff)} total)",
            )
        )
        return out
    if sym.array_pages != trace.array_pages:
        out.append(Divergence("symbolic-trace", f"{label}: array layouts differ"))
    if [
        (d.position, d.kind, d.site, tuple(d.requests), d.lock_pages)
        for d in sym.directives
    ] != [
        (d.position, d.kind, d.site, tuple(d.requests), d.lock_pages)
        for d in trace.directives
    ]:
        out.append(
            Divergence("symbolic-trace", f"{label}: directive events differ")
        )

    # -- the run journal, re-verified from scratch ---------------------------
    n = len(sym.pages)
    boundaries = sorted({d.position for d in sym.directives})
    before_runs = len(out)
    prev_end = 0
    for r in runtrace.runs:
        end = r.start + r.block * r.repeats
        if r.block < 1 or r.repeats < 2 or r.start < 0 or end > n:
            out.append(
                Divergence(
                    "symbolic-runs",
                    f"{label}: malformed run {r} (n={n})",
                )
            )
            break
        if r.start < prev_end:
            out.append(
                Divergence(
                    "symbolic-runs",
                    f"{label}: run {r} overlaps the previous run "
                    f"(ends at {prev_end})",
                )
            )
            break
        prev_end = end
        body = sym.pages[r.start : end - r.block]
        shifted = sym.pages[r.start + r.block : end]
        if len(body) != len(shifted) or (body != shifted).any():
            out.append(
                Divergence(
                    "symbolic-runs",
                    f"{label}: run {r} is not {r.block}-periodic in the "
                    "actual page string",
                )
            )
            break
        straddled = [b for b in boundaries if r.start < b < end]
        if straddled:
            out.append(
                Divergence(
                    "symbolic-runs",
                    f"{label}: run {r} straddles directive position(s) "
                    f"{straddled}",
                )
            )
            break
    if len(out) > before_runs:
        return out  # the collapse below assumes a well-formed journal
    surrogate = Surrogate(sym.pages, runtrace.runs)
    if not surrogate.verify_weights():
        out.append(
            Divergence(
                "symbolic-runs",
                f"{label}: kept weights sum to "
                f"{int(surrogate.weights.sum())}, not {n}",
            )
        )

    # -- weighted analyzers vs the exact sweeps ------------------------------
    exact_lru = LRUSweep(trace)
    sym_lru = SymbolicLRU(runtrace)
    for frames in _frames_samples(max(exact_lru.max_useful_frames, 1)):
        fast = sym_lru.result(frames)
        slow = exact_lru.result(frames)
        if _result_fields(fast) != _result_fields(slow):
            out.append(
                Divergence(
                    "symbolic-lru",
                    f"{label}: frames={frames}: symbolic "
                    f"{_result_fields(fast)} vs sweep {_result_fields(slow)}",
                )
            )
    exact_ws = WSSweep(trace)
    sym_ws = SymbolicWS(runtrace)
    for tau in _tau_samples(max(n, 1)):
        fast = sym_ws.result(tau)
        slow = exact_ws.result(tau)
        if _result_fields(fast) != _result_fields(slow):
            out.append(
                Divergence(
                    "symbolic-ws",
                    f"{label}: tau={tau}: symbolic "
                    f"{_result_fields(fast)} vs sweep {_result_fields(slow)}",
                )
            )

    # -- CD structure walk vs the closed-form fast path ----------------------
    for config in (
        CDConfig(),
        CDConfig(pi_cap=1),
        CDConfig(pi_cap=2),
        CDConfig(min_allocation=3),
        CDConfig(honor_locks=False),
    ):
        if not fastsim.cd_fast_applicable(trace, config):
            continue
        slow = fastsim.simulate_cd_fast(
            trace, config, distances=exact_lru._distances
        )
        try:
            fast = simulate_cd_symbolic(
                runtrace,
                config,
                surrogate=surrogate,
                kept_distances=sym_lru._distances,
            )
        except ValueError as err:
            out.append(
                Divergence(
                    "symbolic-cd",
                    f"{label}: {config.label()}: walk rejected a "
                    f"detector-built journal: {err}",
                )
            )
            continue
        if _result_fields(fast) != _result_fields(slow):
            out.append(
                Divergence(
                    "symbolic-cd",
                    f"{label}: {config.label()}: symbolic "
                    f"{_result_fields(fast)} vs fast {_result_fields(slow)}",
                )
            )

    # -- full minimum-ST searches --------------------------------------------
    for check, fast, slow in (
        ("LRU", sym_lru.min_space_time(), exact_lru.min_space_time()),
        ("WS", sym_ws.min_space_time(), exact_ws.min_space_time()),
    ):
        if (
            _result_fields(fast) != _result_fields(slow)
            or fast.parameter != slow.parameter
        ):
            out.append(
                Divergence(
                    "symbolic-min-st",
                    f"{label}: {check} min-ST: symbolic "
                    f"{_result_fields(fast)} @ {fast.parameter} vs exact "
                    f"{_result_fields(slow)} @ {slow.parameter}",
                )
            )
    return out


def check_static(
    program: ast.Program,
    plan,
    trace: Optional[ReferenceTrace],
    label: str,
    max_references: int = _MAX_REFERENCES,
) -> List[Divergence]:
    """The ``static-*`` battery: the closed-form static engine against
    the exact interpreter/analyzers, integer for integer — with no flat
    page string ever materialized on the static side.

    * ``static-string``   — :func:`generate_static_string` ≡ the
      interpreter's trace (length, truncation, directives, layout,
      every kept reference, and the full string reconstructed from the
      run journal; matching errors when the interpreter raises);
    * ``static-runs``     — the journal re-verified element-wise
      against the exact pages and :meth:`Surrogate.from_parts` ≡ the
      flat-construction surrogate, weights accounted;
    * ``static-lru`` / ``static-ws`` — the weighted analyzers over the
      parts-built surrogate ≡ the exact sweeps at the shared samples;
    * ``static-cd``       — the structure-walk CD replay over the
      virtual string ≡ the closed-form fast path wherever it applies;
    * ``static-min-st``   — both minimum-space-time searches agree,
      chosen parameter included;
    * ``static-recovery`` — when the FORAY-GEN pass rewrites anything,
      the rewritten program compiles to the identical reference trace
      (pages, directives, truncation) — recovery soundness.
    """
    from repro.analysis.staticloc import generate_static_string
    from repro.analysis.symbolic import (
        Surrogate,
        SymbolicLRU,
        SymbolicWS,
        simulate_cd_symbolic,
    )
    from repro.analysis.symbolic.runtrace import RunTrace
    from repro.staticcheck.recovery import recover_program

    out: List[Divergence] = []
    try:
        string = generate_static_string(
            program, plan=plan, max_references=max_references
        )
    except Exception as err:
        string = None
        static_error = f"{type(err).__name__}: {err}"
    if trace is None:
        # The interpreter raised; the static tier must raise identically.
        try:
            generate_trace(
                program,
                plan=plan,
                compile_nests=False,
                max_references=max_references,
            )
            return out  # caller-side mismatch, already reported
        except Exception as err:
            slow_error = f"{type(err).__name__}: {err}"
        if string is not None:
            out.append(
                Divergence(
                    "static-string",
                    f"{label}: interpreter raised {slow_error!r} but the "
                    "static tier produced a string",
                )
            )
        elif static_error != slow_error:
            out.append(
                Divergence(
                    "static-string",
                    f"{label}: error mismatch: interpreter {slow_error!r} "
                    f"vs static {static_error!r}",
                )
            )
        return out
    if string is None:
        out.append(
            Divergence(
                "static-string",
                f"{label}: static tier raised {static_error!r} but the "
                "interpreter produced a trace",
            )
        )
        return out

    n = len(trace.pages)
    if string.truncated != trace.truncated:
        out.append(
            Divergence(
                "static-string",
                f"{label}: truncated {trace.truncated} vs {string.truncated}",
            )
        )
    if string.n_references != n or len(string.pages) != n:
        out.append(
            Divergence(
                "static-string",
                f"{label}: length {n} vs {string.n_references}",
            )
        )
        return out  # everything below compares different strings
    if string.array_pages != trace.array_pages:
        out.append(Divergence("static-string", f"{label}: array layouts differ"))
    if [
        (d.position, d.kind, d.site, tuple(d.requests), d.lock_pages)
        for d in string.directives
    ] != [
        (d.position, d.kind, d.site, tuple(d.requests), d.lock_pages)
        for d in trace.directives
    ]:
        out.append(
            Divergence("static-string", f"{label}: directive events differ")
        )
    kept_pos = string.kept_pos
    if len(kept_pos) and (
        kept_pos[0] < 0
        or kept_pos[-1] >= n
        or (np.diff(kept_pos) <= 0).any()
    ):
        out.append(
            Divergence(
                "static-string", f"{label}: kept positions not sorted/bounded"
            )
        )
        return out
    mismatch = np.nonzero(string.kept_pages != trace.pages[kept_pos])[0]
    if len(mismatch):
        i = int(mismatch[0])
        out.append(
            Divergence(
                "static-string",
                f"{label}: kept page mismatch at position "
                f"{int(kept_pos[i])}: exact {int(trace.pages[kept_pos[i]])} "
                f"vs static {int(string.kept_pages[i])} "
                f"({len(mismatch)} total)",
            )
        )
        return out

    # -- the run journal, re-verified against the exact pages ----------------
    boundaries = sorted({d.position for d in string.directives})
    before_runs = len(out)
    covered = np.zeros(n, dtype=bool)
    covered[kept_pos] = True
    prev_end = 0
    for r in string.runs:
        end = r.start + r.block * r.repeats
        if r.block < 1 or r.repeats < 2 or r.start < 0 or end > n:
            out.append(
                Divergence(
                    "static-runs", f"{label}: malformed run {r} (n={n})"
                )
            )
            break
        if r.start < prev_end:
            out.append(
                Divergence(
                    "static-runs",
                    f"{label}: run {r} overlaps the previous run "
                    f"(ends at {prev_end})",
                )
            )
            break
        prev_end = end
        body = trace.pages[r.start : end - r.block]
        shifted = trace.pages[r.start + r.block : end]
        if len(body) != len(shifted) or (body != shifted).any():
            out.append(
                Divergence(
                    "static-runs",
                    f"{label}: run {r} is not {r.block}-periodic in the "
                    "exact page string",
                )
            )
            break
        straddled = [b for b in boundaries if r.start < b < end]
        if straddled:
            out.append(
                Divergence(
                    "static-runs",
                    f"{label}: run {r} straddles directive position(s) "
                    f"{straddled}",
                )
            )
            break
        covered[r.start : end] = True
    if len(out) > before_runs:
        return out
    if not covered.all():
        hole = int(np.nonzero(~covered)[0][0])
        out.append(
            Divergence(
                "static-runs",
                f"{label}: reference {hole} neither kept nor inside a run",
            )
        )
        return out
    surrogate = string.surrogate()
    if not surrogate.verify_weights():
        out.append(
            Divergence(
                "static-runs",
                f"{label}: kept weights sum to "
                f"{int(surrogate.weights.sum())}, not {n}",
            )
        )
    # from_parts must equal the flat construction on the same journal
    reference = Surrogate(trace.pages, string.runs)
    for attr in ("kept_pos", "kept_pages", "weights"):
        a = getattr(surrogate, attr)
        b = getattr(reference, attr)
        if len(a) != len(b) or (np.asarray(a) != np.asarray(b)).any():
            out.append(
                Divergence(
                    "static-runs",
                    f"{label}: from_parts surrogate differs from flat "
                    f"construction in {attr}",
                )
            )
            return out

    # -- weighted analyzers vs the exact sweeps ------------------------------
    exact_lru = LRUSweep(trace)
    static_lru = SymbolicLRU(surrogate, program=trace.program_name)
    for frames in _frames_samples(max(exact_lru.max_useful_frames, 1)):
        fast = static_lru.result(frames)
        slow = exact_lru.result(frames)
        if _result_fields(fast) != _result_fields(slow):
            out.append(
                Divergence(
                    "static-lru",
                    f"{label}: frames={frames}: static "
                    f"{_result_fields(fast)} vs sweep {_result_fields(slow)}",
                )
            )
    exact_ws = WSSweep(trace)
    static_ws = SymbolicWS(surrogate, program=trace.program_name)
    for tau in _tau_samples(max(n, 1)):
        fast = static_ws.result(tau)
        slow = exact_ws.result(tau)
        if _result_fields(fast) != _result_fields(slow):
            out.append(
                Divergence(
                    "static-ws",
                    f"{label}: tau={tau}: static "
                    f"{_result_fields(fast)} vs sweep {_result_fields(slow)}",
                )
            )

    # -- CD structure walk over the virtual string vs the fast path ----------
    runtrace = RunTrace(string, string.runs)
    for config in (
        CDConfig(),
        CDConfig(pi_cap=1),
        CDConfig(pi_cap=2),
        CDConfig(min_allocation=3),
        CDConfig(honor_locks=False),
    ):
        if not fastsim.cd_fast_applicable(trace, config):
            continue
        slow = fastsim.simulate_cd_fast(
            trace, config, distances=exact_lru._distances
        )
        try:
            fast = simulate_cd_symbolic(
                runtrace,
                config,
                surrogate=surrogate,
                kept_distances=static_lru._distances,
            )
        except ValueError as err:
            out.append(
                Divergence(
                    "static-cd",
                    f"{label}: {config.label()}: walk rejected a "
                    f"static-built journal: {err}",
                )
            )
            continue
        if _result_fields(fast) != _result_fields(slow):
            out.append(
                Divergence(
                    "static-cd",
                    f"{label}: {config.label()}: static "
                    f"{_result_fields(fast)} vs fast {_result_fields(slow)}",
                )
            )

    # -- full minimum-ST searches --------------------------------------------
    for check, fast, slow in (
        ("LRU", static_lru.min_space_time(), exact_lru.min_space_time()),
        ("WS", static_ws.min_space_time(), exact_ws.min_space_time()),
    ):
        if (
            _result_fields(fast) != _result_fields(slow)
            or fast.parameter != slow.parameter
        ):
            out.append(
                Divergence(
                    "static-min-st",
                    f"{label}: {check} min-ST: static "
                    f"{_result_fields(fast)} @ {fast.parameter} vs exact "
                    f"{_result_fields(slow)} @ {slow.parameter}",
                )
            )

    # -- affine-recovery soundness: rewrite ⇒ identical trace ----------------
    try:
        recovery = recover_program(program)
    except Exception as err:
        out.append(
            Divergence(
                "static-recovery",
                f"{label}: recovery pass raised {type(err).__name__}: {err}",
            )
        )
        return out
    if recovery.sites:
        try:
            recovered_trace = generate_trace(
                recovery.program, plan=plan, max_references=max_references
            )
        except Exception as err:
            out.append(
                Divergence(
                    "static-recovery",
                    f"{label}: recovered program raised "
                    f"{type(err).__name__}: {err} but the original ran",
                )
            )
            return out
        if len(recovered_trace.pages) != n or (
            recovered_trace.pages != trace.pages
        ).any():
            out.append(
                Divergence(
                    "static-recovery",
                    f"{label}: rewritten program is not trace-equivalent "
                    f"({len(recovery.sites)} recovered site(s))",
                )
            )
        elif [
            (d.position, d.kind) for d in recovered_trace.directives
        ] != [(d.position, d.kind) for d in trace.directives]:
            out.append(
                Divergence(
                    "static-recovery",
                    f"{label}: rewritten program shifts directive events",
                )
            )
    return out


# -- the full battery --------------------------------------------------------


def check_program(
    program: ast.Program,
    max_references: int = _MAX_REFERENCES,
    deep: bool = True,
) -> List[Divergence]:
    """Run every check on one program, across directive variants.

    Variants: uninstrumented, ALLOCATE-only, and ALLOCATE+LOCK — so
    directive placement, event splicing, and lock resolution are all
    exercised on every generated nest shape.
    """
    out: List[Divergence] = []
    out.extend(check_roundtrip(program))
    variants = [
        ("plain", None),
        ("alloc", instrument_program(program, with_locks=False)),
        ("locks", instrument_program(program, with_locks=True)),
    ]
    for label, plan in variants:
        if plan is not None:
            for problem in check_instrumented_roundtrip(program, plan):
                out.append(Divergence("trace-roundtrip", f"{label}: {problem}"))
        divs, trace = check_trace_equivalence(
            program, plan, label, max_references=max_references
        )
        out.extend(divs)
        if plan is not None:
            out.extend(check_lint(program, plan, trace, label))
        # metric-* before symbolic-*: both compare against the same fast
        # paths, so a fastsim/analyzer bug should classify as the metric
        # divergence it is, not as a symbolic one
        if trace is not None and len(trace.pages):
            out.extend(check_metrics(trace, label))
        out.extend(
            check_symbolic(
                program, plan, trace, label, max_references=max_references
            )
        )
        out.extend(
            check_static(
                program, plan, trace, label, max_references=max_references
            )
        )
        if trace is None or not len(trace.pages):
            continue
        out.extend(check_stream_metrics(trace, label))
        if deep:
            out.extend(check_lru_inclusion(trace, label))
            out.extend(check_ws_window(trace, label))
            out.extend(check_cd_lru_prefix(trace, label))
            out.extend(check_cd_locks(trace, label))
            out.extend(check_event_conservation(trace, label))
            out.extend(check_stream_events(trace, label))
            out.extend(check_stream_sharded(trace, label))
            if label == "alloc":
                out.extend(check_pool_conservation(trace, label))
    return out


def check_case(case, deep: bool = True) -> List[Divergence]:
    """Run the battery on one :class:`~repro.oracle.generator.GeneratedCase`.

    Every ninth seed is additionally replayed under a tiny reference
    cap, so mid-nest truncation (the trace filling up *inside* a
    compiled batch) is exercised continuously, not just by the fixed
    regression tests.
    """
    out = check_program(case.program, deep=deep)
    if case.seed % 9 == 0:
        divs, _trace = check_trace_equivalence(
            case.program, None, "truncated", max_references=257
        )
        out.extend(divs)
    return out


def check_source(source: str, deep: bool = True) -> List[Divergence]:
    """Parse ``source`` and run the battery (used by the shrinker)."""
    try:
        program = parse_source(source)
    except FrontendError:
        return []  # an unparsable candidate exhibits nothing
    return check_program(program, deep=deep)
