"""Seeded generator of adversarial mini-FORTRAN loop nests.

Programs are built as *source text* and pushed through the real
frontend (``parse_source``), so every generated case also exercises the
lexer, the parser, and — via the harness's round-trip check — the
unparser.  The generator is deliberately biased toward the situations
the affine trace compiler finds hard:

* triangular and non-unit-stride (including negative and zero-trip)
  loop bounds, bounds read from scalars assigned earlier;
* row-order vs column-order 2-D reference patterns (the paper's Θ);
* multiple index expression shapes per subscript (identity, reflection,
  shift, dilation, MOD-folding, constants — the paper's X);
* loop-carried scalar accumulators, guarded assignments, in-place
  stencils, array-to-array copies, DATA-initialized arrays;
* data-dependent control flow (IF blocks, DO WHILE) that *must* force
  the compiler to fall back without changing the trace.

Every subscript is in bounds *by construction* (each index template
carries the variable range it is valid for), and every arithmetic
operation is range-safe, so a generated program never raises at run
time — any interpreter error is itself a bug worth reporting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.frontend import ast
from repro.frontend.parser import parse_source

__all__ = ["GeneratedCase", "generate_case"]

#: iteration budget for one nest (keeps traces small enough that a
#: 200-seed run fits in a CI time budget)
_NEST_ITERATION_BUDGET = 2400

_ARRAY_NAMES = ("A", "B", "C")
_LOOP_VARS = ("I", "J", "K")


@dataclass
class GeneratedCase:
    """One generated program, parsed and ready for the harness."""

    seed: int
    source: str
    program: ast.Program

    @property
    def name(self) -> str:
        return self.program.name


@dataclass
class _Array:
    name: str
    dims: Tuple[int, ...]

    @property
    def rank(self) -> int:
        return len(self.dims)


@dataclass
class _IntVal:
    """An integer-valued name with a statically known value range."""

    name: str
    lo: int
    hi: int


class _Emitter:
    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.lines: List[str] = []
        self.arrays: List[_Array] = []
        self.scalars: Dict[str, _IntVal] = {}
        self.float_scalars: List[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append("  " * self.depth + text)

    # -- index templates ----------------------------------------------------

    def index_expr(self, var: Optional[_IntVal], dim: int) -> str:
        """A subscript expression guaranteed to land in ``[1, dim]``."""
        rng = self.rng
        choices: List[str] = [str(rng.randint(1, dim))]
        if var is not None:
            v = var.name
            if var.hi <= dim:
                choices += [v, v, f"{dim + 1} - {v}"]
            if var.hi + 1 <= dim:
                choices.append(f"{v} + 1")
            if var.lo >= 2:
                choices.append(f"{v} - 1")
            if 2 * var.hi - 1 <= dim:
                choices.append(f"2 * {v} - 1")
            choices.append(f"MOD({v}, {dim}) + 1")
            aux = self._random_int_scalar()
            if aux is not None and aux.name != v:
                choices.append(f"MOD({v} + {aux.name}, {dim}) + 1")
        return rng.choice(choices)

    def _random_int_scalar(self) -> Optional[_IntVal]:
        if not self.scalars:
            return None
        name = self.rng.choice(sorted(self.scalars))
        return self.scalars[name]

    def array_ref(self, loop_vars: List[_IntVal], write: bool = False) -> str:
        """A reference to a random array, in-bounds in every dimension.

        2-D references pick the variable→dimension pairing at random,
        covering both row-order and column-order access (Θ).
        """
        rng = self.rng
        arr = rng.choice(self.arrays)
        if arr.rank == 1:
            var = rng.choice(loop_vars) if loop_vars else None
            return f"{arr.name}({self.index_expr(var, arr.dims[0])})"
        if loop_vars:
            picks = [rng.choice(loop_vars), rng.choice(loop_vars)]
            if len(loop_vars) >= 2 and rng.random() < 0.7:
                picks = rng.sample(loop_vars, 2)
            if rng.random() < 0.5:
                picks.reverse()
        else:
            picks = [None, None]
        i1 = self.index_expr(picks[0], arr.dims[0])
        i2 = self.index_expr(picks[1], arr.dims[1])
        return f"{arr.name}({i1}, {i2})"

    # -- value expressions --------------------------------------------------

    def float_expr(self, loop_vars: List[_IntVal], depth: int = 0) -> str:
        """A float-valued expression that can never raise."""
        rng = self.rng
        leaves = [
            lambda: self.array_ref(loop_vars),
            lambda: rng.choice(("0.5", "1.0", "2.0", "0.25", "1.5")),
        ]
        if self.float_scalars:
            leaves.append(lambda: rng.choice(self.float_scalars))
        if loop_vars:
            leaves.append(lambda: f"FLOAT({rng.choice(loop_vars).name})")
            leaves.append(lambda: rng.choice(loop_vars).name)
        if depth >= 2 or rng.random() < 0.35:
            return rng.choice(leaves)()
        a = self.float_expr(loop_vars, depth + 1)
        b = self.float_expr(loop_vars, depth + 1)
        form = rng.randrange(7)
        if form == 0:
            return f"{a} + {b}"
        if form == 1:
            return f"{a} - {b}"
        if form == 2:
            return f"0.5 * ({a} + {b})"
        if form == 3:
            return f"{a} / 2.0"
        if form == 4:
            return f"ABS({a})"
        if form == 5:
            return f"AMIN1({a}, {b})"
        return f"AMAX1({a}, {b})"

    def condition(self, loop_vars: List[_IntVal]) -> str:
        rng = self.rng
        if loop_vars and rng.random() < 0.8:
            var = rng.choice(loop_vars)
            op = rng.choice((".GT.", ".LT.", ".GE.", ".LE.", ".EQ.", ".NE."))
            pivot = rng.randint(var.lo, max(var.lo, var.hi - 1))
            if rng.random() < 0.3:
                return f"MOD({var.name}, 2) {op} 0"
            return f"{var.name} {op} {pivot}"
        return rng.choice((f"{self.float_expr(loop_vars)} .GE. 0.0", ".TRUE."))


def _gen_body_statement(em: _Emitter, loop_vars: List[_IntVal]) -> None:
    rng = em.rng
    roll = rng.random()
    if roll < 0.45:
        em.emit(f"{em.array_ref(loop_vars, write=True)} = {em.float_expr(loop_vars)}")
    elif roll < 0.60:
        em.emit(f"S = S + {em.float_expr(loop_vars)}")
    elif roll < 0.72:
        guard = em.condition(loop_vars)
        em.emit(
            f"IF ({guard}) {em.array_ref(loop_vars, write=True)} = "
            f"{em.float_expr(loop_vars)}"
        )
    elif roll < 0.80:
        guard = em.condition(loop_vars)
        em.emit(f"IF ({guard}) S = S + {em.float_expr(loop_vars)}")
    elif roll < 0.88:
        em.emit(f"{em.array_ref(loop_vars, write=True)} = {em.array_ref(loop_vars)}")
    elif roll < 0.94 and loop_vars:
        # integer auxiliary definition, range tracked for later subscripts
        var = rng.choice(loop_vars)
        off = rng.randint(0, 3)
        em.scalars["T"] = _IntVal("T", var.lo + off, var.hi + off)
        em.emit(f"T = {var.name} + {off}")
    else:
        em.emit(f"PRINT *, {em.float_expr(loop_vars)}")


def _gen_if_block(em: _Emitter, loop_vars: List[_IntVal]) -> None:
    """A block IF — illegal for the compiler, forcing a clean fallback."""
    em.emit(f"IF ({em.condition(loop_vars)}) THEN")
    em.depth += 1
    _gen_body_statement(em, loop_vars)
    em.depth -= 1
    if em.rng.random() < 0.5:
        em.emit("ELSE")
        em.depth += 1
        _gen_body_statement(em, loop_vars)
        em.depth -= 1
    em.emit("ENDIF")


def _loop_header(
    em: _Emitter, var_name: str, outer: List[_IntVal], budget: int
) -> Tuple[str, _IntVal, int]:
    """One DO header: returns (text, value-range, worst-case trip count)."""
    rng = em.rng
    hi = rng.randint(2, max(2, min(16, budget)))
    style = rng.randrange(10)
    if style <= 3:  # plain unit-stride
        bound = str(hi)
        n_scalar = em.scalars.get("N")
        if n_scalar is not None and n_scalar.hi <= hi and rng.random() < 0.4:
            bound, hi = "N", n_scalar.hi
        return (f"DO {var_name} = 1, {bound}", _IntVal(var_name, 1, hi), hi)
    if style == 4:  # downward
        return (f"DO {var_name} = {hi}, 1, -1", _IntVal(var_name, 1, hi), hi)
    if style == 5:  # strided
        step = rng.choice((2, 3))
        return (
            f"DO {var_name} = 1, {hi}, {step}",
            _IntVal(var_name, 1, hi),
            hi // step + 1,
        )
    if style == 6:  # downward strided
        return (
            f"DO {var_name} = {hi}, 1, -2",
            _IntVal(var_name, 1, hi),
            hi // 2 + 1,
        )
    if style == 7 and outer:  # triangular: lower bound from an outer var
        ov = rng.choice(outer)
        top = max(hi, ov.hi)
        return (
            f"DO {var_name} = {ov.name}, {top}",
            _IntVal(var_name, ov.lo, top),
            top,
        )
    if style == 8 and outer:  # triangular: upper bound from an outer var
        ov = rng.choice(outer)
        return (
            f"DO {var_name} = 1, {ov.name}",
            _IntVal(var_name, 1, ov.hi),
            ov.hi,
        )
    if style == 9 and rng.random() < 0.5:  # zero-trip
        return (f"DO {var_name} = {hi}, 1", _IntVal(var_name, 1, hi), 1)
    return (f"DO {var_name} = 1, {hi}", _IntVal(var_name, 1, hi), hi)


def _gen_nest(em: _Emitter, depth: int) -> None:
    budget = _NEST_ITERATION_BUDGET
    loop_vars: List[_IntVal] = []
    opened = 0
    for level in range(depth):
        header, val, trips = _loop_header(
            em,
            _LOOP_VARS[level],
            loop_vars,
            max(2, int(budget ** (1 / (depth - level)))),
        )
        budget = max(1, budget // max(trips, 1))
        em.emit(header)
        em.depth += 1
        loop_vars.append(val)
        opened += 1
        # statements *between* loop levels exercise slot interleaving
        if em.rng.random() < 0.4:
            _gen_body_statement(em, list(loop_vars))
    n_stmts = em.rng.randint(1, 4)
    for _ in range(n_stmts):
        if em.rng.random() < 0.08:
            _gen_if_block(em, loop_vars)
        else:
            _gen_body_statement(em, loop_vars)
    for _ in range(opened):
        if em.rng.random() < 0.25:
            _gen_body_statement(em, list(loop_vars))
        em.depth -= 1
        em.emit("ENDDO")
        loop_vars.pop()


def _gen_while(em: _Emitter) -> None:
    """A bounded convergence loop (never compiled, always interpreted)."""
    em.emit("X = 16.0")
    if "X" not in em.float_scalars:
        em.float_scalars.append("X")
    em.emit("DO WHILE (X .GT. 1.0)")
    em.depth += 1
    em.emit("X = X / 2.0")
    em.emit(f"{em.array_ref([], write=True)} = {em.array_ref([])} + X")
    em.depth -= 1
    em.emit("ENDDO")


def generate_source(seed: int) -> str:
    """Deterministically generate one program's source text."""
    rng = random.Random(seed)
    em = _Emitter(rng)
    n_arrays = rng.randint(1, 3)
    for i in range(n_arrays):
        rank = 2 if rng.random() < 0.45 else 1
        if rank == 1:
            dims: Tuple[int, ...] = (rng.randint(3, 40),)
        else:
            dims = (rng.randint(2, 16), rng.randint(2, 16))
        em.arrays.append(_Array(_ARRAY_NAMES[i], dims))

    decls = ", ".join(
        f"{a.name}({', '.join(str(d) for d in a.dims)})" for a in em.arrays
    )
    em.emit(f"PROGRAM FZ{seed % 100000}")
    em.emit(f"DIMENSION {decls}")
    data_arr = rng.choice(em.arrays) if rng.random() < 0.25 else None
    if data_arr is not None:
        count = 1
        for d in data_arr.dims:
            count *= d
        em.emit(f"DATA {data_arr.name} /{count}*0.5/")
    em.emit("S = 0.0")
    em.float_scalars.append("S")
    n_val = rng.randint(2, 9)
    em.scalars["N"] = _IntVal("N", n_val, n_val)
    em.emit(f"N = {n_val}")
    # T is reassigned inside loop bodies; the upfront definition keeps it
    # well-defined even when that reassignment sits in a zero-trip loop
    # or an untaken IF branch.  T only ever feeds MOD-folded subscripts,
    # which are in bounds for any non-negative value.
    em.scalars["T"] = _IntVal("T", 1, 1)
    em.emit("T = 1")
    n_nests = rng.randint(1, 3)
    for _ in range(n_nests):
        if rng.random() < 0.08:
            _gen_while(em)
        else:
            _gen_nest(em, rng.choices((1, 2, 3), weights=(3, 4, 3))[0])
    em.emit(f"S = S + {em.array_ref([])}")
    em.emit("END")
    return "\n".join(em.lines) + "\n"


def generate_case(seed: int) -> GeneratedCase:
    """Generate, parse, and package one differential-test case."""
    source = generate_source(seed)
    program = parse_source(source)
    return GeneratedCase(seed=seed, source=source, program=program)
