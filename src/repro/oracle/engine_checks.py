"""Engine self-checks for the oracle: chaos in, invariants out.

The differential battery proves the *paging* fast paths; these checks
prove the *supervision* layer the sweeps run under, by injecting faults
with :mod:`repro.engine.chaos` and asserting the engine's contract
(``engine-*`` check ids):

* ``engine-retry`` — with ``inject-exception`` chaos under the retry
  budget, every job still completes, every injection surfaces as a
  ``JobRetry`` event, and the results equal a chaos-free run;
* ``engine-resume`` — ``kill-worker`` chaos past the retry budget
  fails a job (and cascades to its dependents), and resuming from the
  run ledger completes the sweep with payloads identical to an
  uninterrupted run;
* ``engine-ledger`` — the JSONL ledger round-trips, tolerates a torn
  trailing line, and refuses a checkpoint whose params fingerprint
  changed;
* ``engine-heal`` — corrupting a persisted artifact-cache archive is
  repaired transparently: the bad entry is quarantined as
  ``*.npz.<pid>-<seq>.corrupt``, a warning is logged, and the rebuilt artifacts
  produce identical CD results.

Everything runs on ``selftest`` jobs (pure arithmetic) except the
cache-healing check, which builds one small real workload inside a
throwaway cache directory.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import List

from repro.engine.chaos import ChaosPlan, corrupt_one_cache_entry
from repro.engine.jobs import JobSpec
from repro.engine.ledger import LedgerState, RunLedger
from repro.engine.supervisor import Engine, EngineConfig
from repro.oracle.harness import Divergence

__all__ = ["check_engine"]

#: the smallest bundled workload — keeps the healing check cheap
_HEAL_WORKLOAD = "INIT"


def _selftest_specs() -> List[JobSpec]:
    return [
        JobSpec("job:a", "selftest", {"value": 2}),
        JobSpec("job:b", "selftest", {"value": 3}),
        JobSpec("job:c", "selftest", {"value": 4}, deps=("job:a",)),
        JobSpec("job:d", "selftest", {"value": 5}, deps=("job:b", "job:c")),
    ]


def _run(config: EngineConfig, specs, resume=None):
    from repro.obs import RingBufferSink, Tracer

    ring = RingBufferSink()
    report = Engine(config, tracer=Tracer(ring)).run(specs, resume=resume)
    return report, ring.events


def check_engine_retry() -> List[Divergence]:
    from repro.obs.events import JobFail, JobRetry

    out: List[Divergence] = []
    clean_report, _ = _run(
        EngineConfig(max_workers=2, backoff_base=0.01), _selftest_specs()
    )
    chaos = ChaosPlan("inject-exception", hits=1)
    report, events = _run(
        EngineConfig(max_workers=2, max_retries=2, backoff_base=0.01, chaos=chaos),
        _selftest_specs(),
    )
    if not report.ok:
        out.append(
            Divergence(
                "engine-retry",
                f"jobs failed despite retry budget: {report.failed}",
            )
        )
    retries = [e for e in events if isinstance(e, JobRetry)]
    if len(retries) != chaos.total_injected:
        out.append(
            Divergence(
                "engine-retry",
                f"{chaos.total_injected} injected failures but "
                f"{len(retries)} JobRetry events",
            )
        )
    if any(isinstance(e, JobFail) for e in events):
        out.append(
            Divergence("engine-retry", "JobFail emitted under the retry budget")
        )
    if report.results != clean_report.results:
        out.append(
            Divergence(
                "engine-retry",
                "chaos run results differ from chaos-free run: "
                f"{report.results} vs {clean_report.results}",
            )
        )
    return out


def check_engine_resume() -> List[Divergence]:
    from repro.obs.events import JobFail

    out: List[Divergence] = []
    clean_report, _ = _run(
        EngineConfig(max_workers=2, backoff_base=0.01), _selftest_specs()
    )
    with tempfile.TemporaryDirectory() as tmp:
        ledger_path = Path(tmp) / "ledger.jsonl"
        chaos = ChaosPlan("kill-worker", hits=2, match="job:c")
        with RunLedger(ledger_path) as ledger:
            report, events = _run_with_ledger(
                EngineConfig(
                    max_workers=2, max_retries=1, backoff_base=0.01, chaos=chaos
                ),
                ledger,
            )
        fails = [e for e in events if isinstance(e, JobFail)]
        if "job:c" not in report.failed or "job:d" not in report.failed:
            out.append(
                Divergence(
                    "engine-resume",
                    "kill-worker past the retry budget must fail job:c and "
                    f"cascade to job:d; failed={sorted(report.failed)}",
                )
            )
        if len(fails) != len(report.failed):
            out.append(
                Divergence(
                    "engine-resume",
                    f"{len(report.failed)} failed jobs but {len(fails)} "
                    "JobFail events",
                )
            )
        state = LedgerState.load(ledger_path)
        with RunLedger(ledger_path) as ledger:
            resumed, _events = _run_with_ledger(
                EngineConfig(max_workers=2, backoff_base=0.01),
                ledger,
                resume=state,
            )
        if not resumed.ok:
            out.append(
                Divergence(
                    "engine-resume", f"resumed run failed: {resumed.failed}"
                )
            )
        if resumed.resumed != len(state.completed):
            out.append(
                Divergence(
                    "engine-resume",
                    f"{len(state.completed)} checkpointed jobs but "
                    f"{resumed.resumed} restored",
                )
            )
        if resumed.results != clean_report.results:
            out.append(
                Divergence(
                    "engine-resume",
                    "resumed results differ from an uninterrupted run",
                )
            )
    return out


def _run_with_ledger(config: EngineConfig, ledger: RunLedger, resume=None):
    from repro.obs import RingBufferSink, Tracer

    ring = RingBufferSink()
    engine = Engine(config, tracer=Tracer(ring), ledger=ledger)
    report = engine.run(_selftest_specs(), resume=resume)
    return report, ring.events


def check_engine_ledger() -> List[Divergence]:
    out: List[Divergence] = []
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.append({"kind": "run-start", "run_id": "check"})
            ledger.job_done("a", "fp-a", 1, {"x": 1})
            ledger.job_fail("b", 3, "boom")
        with path.open("a") as fh:
            fh.write('{"kind":"job-done","job":"torn"')  # crash mid-append
        state = LedgerState.load(path)
        if state.skipped_lines != 1:
            out.append(
                Divergence(
                    "engine-ledger",
                    f"torn trailing line not tolerated: "
                    f"skipped={state.skipped_lines}",
                )
            )
        if state.payload_for("a", "fp-a") != {"x": 1}:
            out.append(
                Divergence("engine-ledger", "checkpointed payload lost")
            )
        if state.payload_for("a", "fp-changed") is not None:
            out.append(
                Divergence(
                    "engine-ledger",
                    "payload reused although the params fingerprint changed",
                )
            )
        if state.failed.get("b") != "boom":
            out.append(Divergence("engine-ledger", "job-fail record lost"))
        # Every surviving line must be valid standalone JSON.
        with path.open() as fh:
            lines = [line for line in fh if line.strip()]
        parsed = 0
        for line in lines:
            try:
                json.loads(line)
                parsed += 1
            except json.JSONDecodeError:
                pass
        if parsed != len(lines) - 1:  # exactly the torn line fails
            out.append(
                Divergence(
                    "engine-ledger",
                    f"{len(lines) - parsed} unreadable line(s), expected 1",
                )
            )
    return out


def check_engine_heal() -> List[Divergence]:
    from repro.experiments.runner import artifacts_for, clear_cache
    from repro.vm.policies import CDConfig

    out: List[Divergence] = []
    previous = os.environ.get("REPRO_CACHE_DIR")
    with tempfile.TemporaryDirectory() as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        try:
            clear_cache(disk=False)  # drop the memo; build into tmp
            baseline = artifacts_for(_HEAL_WORKLOAD).cd_result(CDConfig())
            clear_cache(disk=False)
            corrupted = corrupt_one_cache_entry(seed=0)
            if corrupted is None:
                out.append(
                    Divergence(
                        "engine-heal", "no cache archive found to corrupt"
                    )
                )
                return out
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                healed = artifacts_for(_HEAL_WORKLOAD).cd_result(CDConfig())
            if not any("quarantined" in str(w.message) for w in caught):
                out.append(
                    Divergence(
                        "engine-heal",
                        "corrupt cache entry rebuilt without a warning",
                    )
                )
            quarantined = list(Path(tmp).glob("*.corrupt"))
            if not quarantined:
                out.append(
                    Divergence(
                        "engine-heal",
                        "corrupt archive was not quarantined as *.corrupt",
                    )
                )
            if (
                healed.page_faults != baseline.page_faults
                or healed.space_time != baseline.space_time
                or healed.mem_average != baseline.mem_average
            ):
                out.append(
                    Divergence(
                        "engine-heal",
                        "rebuilt artifacts give different CD results: "
                        f"PF {healed.page_faults} vs {baseline.page_faults}",
                    )
                )
        finally:
            clear_cache(disk=False)  # memo points at tmp; drop it
            if previous is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = previous
    return out


def check_engine(heal: bool = True) -> List[Divergence]:
    """Run every engine self-check; ``heal=False`` skips the one check
    that builds real workload artifacts."""
    out: List[Divergence] = []
    out.extend(check_engine_retry())
    out.extend(check_engine_resume())
    out.extend(check_engine_ledger())
    if heal:
        out.extend(check_engine_heal())
    return out
