"""The run ledger: crash-safe JSONL checkpoints under ``results/runs/``.

One line per record, appended and fsynced as each job settles, so a
SIGKILL at any instant loses at most the line being written.  Loading
tolerates a truncated trailing line (the crash case) and ignores
records it does not understand (a newer writer).

Record kinds
------------

``run-start``
    Run metadata: run id, targets, engine parameters.  Appended every
    time the run starts *or resumes*, so the ledger doubles as a
    supervision history.

``job-done``
    A completed job: id, attempts, the params fingerprint, and the
    JSON payload the job returned.  Resume replays these as instant
    results when the fingerprint still matches.

``job-fail``
    A permanently failed job (retries exhausted or dependency failed).
    Failed jobs are *not* reused on resume — they run again.

``interrupt``
    The run stopped on Ctrl-C; recorded so a resumed run can tell a
    clean failure from an interruption.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = ["LedgerState", "RunLedger"]


class RunLedger:
    """Append-only JSONL writer with durable (fsync) appends."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = None

    def append(self, record: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")
        json.dump(record, self._fh, separators=(",", ":"), sort_keys=True)
        self._fh.write("\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def job_done(
        self, job: str, fingerprint: str, attempts: int, payload: dict
    ) -> None:
        self.append(
            {
                "kind": "job-done",
                "job": job,
                "fingerprint": fingerprint,
                "attempts": attempts,
                "payload": payload,
            }
        )

    def job_fail(self, job: str, attempts: int, error: str) -> None:
        self.append(
            {"kind": "job-fail", "job": job, "attempts": attempts, "error": error}
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


@dataclass
class LedgerState:
    """What a previous run left behind, as read back for ``--resume``."""

    #: job id -> (params fingerprint, payload) for every completed job
    completed: Dict[str, tuple] = field(default_factory=dict)
    #: job id -> error string for jobs that failed permanently
    failed: Dict[str, str] = field(default_factory=dict)
    #: the most recent run-start record, if any
    run_info: Optional[dict] = None
    #: lines that could not be parsed (normally 0 or a truncated tail)
    skipped_lines: int = 0

    @classmethod
    def load(cls, path: Union[str, Path]) -> "LedgerState":
        state = cls()
        path = Path(path)
        if not path.exists():
            return state
        with path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves one torn trailing line;
                    # anything we can't read we simply don't trust.
                    state.skipped_lines += 1
                    continue
                kind = record.get("kind")
                if kind == "job-done":
                    state.completed[record["job"]] = (
                        record.get("fingerprint", ""),
                        record.get("payload", {}),
                    )
                    state.failed.pop(record["job"], None)
                elif kind == "job-fail":
                    if record["job"] not in state.completed:
                        state.failed[record["job"]] = record.get("error", "")
                elif kind == "run-start":
                    state.run_info = record
        return state

    def payload_for(self, job: str, fingerprint: str) -> Optional[dict]:
        """The checkpointed payload, iff the job definition is unchanged."""
        entry = self.completed.get(job)
        if entry is None:
            return None
        stored_fingerprint, payload = entry
        if stored_fingerprint != fingerprint:
            return None
        return payload
