"""Fault injection for the sweep engine.

A :class:`ChaosPlan` describes *deterministic* sabotage: which jobs it
hits (an ``fnmatch`` pattern over job ids), and how many attempts per
job it ruins (``hits``).  With ``hits <= max_retries`` every sabotaged
job still completes — each injection shows up as a ``JobRetry`` event —
and with ``hits > max_retries`` the job fails permanently, which is how
the checkpoint/resume tests interrupt a sweep mid-run.

Modes
-----

``kill-worker``
    The worker SIGKILLs itself before running the job — the hard-crash
    case (no exception, no exit handler, no message back).

``inject-exception``
    The worker raises :class:`ChaosError` before running the job.

``slow-job``
    The worker sleeps ``delay`` seconds before running the job; pair it
    with a small ``--timeout`` to exercise the supervisor's hang
    detection.

``corrupt-cache-entry``
    Supervisor-side: before the attempt launches, one persisted
    artifact-cache archive gets a byte flipped, proving the cache
    self-healing path (quarantine + rebuild) end to end.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, Optional

__all__ = ["CHAOS_MODES", "ChaosError", "ChaosPlan", "corrupt_one_cache_entry"]

CHAOS_MODES = (
    "kill-worker",
    "inject-exception",
    "slow-job",
    "corrupt-cache-entry",
)


class ChaosError(RuntimeError):
    """The injected failure for ``inject-exception`` mode."""


@dataclass
class ChaosPlan:
    """Deterministic sabotage schedule for one engine run."""

    mode: str
    hits: int = 1  # attempts per matching job to sabotage (1-based)
    match: str = "*"  # fnmatch pattern over job ids
    delay: float = 0.5  # sleep for slow-job mode
    #: per-job injection counts, for post-run assertions
    injected: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in CHAOS_MODES:
            raise ValueError(
                f"unknown chaos mode {self.mode!r}; known: {', '.join(CHAOS_MODES)}"
            )
        if self.hits < 1:
            raise ValueError("chaos hits must be >= 1")

    def applies(self, job_id: str, attempt: int) -> bool:
        """Sabotage this attempt?  (attempts are 1-based)"""
        return attempt <= self.hits and fnmatch(job_id, self.match)

    def record(self, job_id: str) -> None:
        self.injected[job_id] = self.injected.get(job_id, 0) + 1

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def worker_action(self) -> Optional[tuple]:
        """The (mode, arg) tuple shipped to the worker, or None for
        supervisor-side modes."""
        if self.mode == "corrupt-cache-entry":
            return None
        return (self.mode, self.delay)


def apply_in_worker(action: Optional[tuple]) -> None:
    """Execute a worker-side chaos action (called inside the child)."""
    if action is None:
        return
    mode, delay = action
    if mode == "kill-worker":
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "inject-exception":
        raise ChaosError("injected failure (chaos mode inject-exception)")
    elif mode == "slow-job":
        time.sleep(delay)


def corrupt_one_cache_entry(seed: int = 0) -> Optional[str]:
    """Flip one byte in one persisted artifact-cache archive.

    Returns the corrupted path (None when the cache is empty or
    disabled).  The choice of file and byte is a deterministic function
    of ``seed`` and the cache contents, so chaos runs replay exactly.
    """
    from repro.experiments.runner import cache_dir

    cdir = cache_dir()
    if cdir is None or not cdir.is_dir():
        return None
    archives = sorted(cdir.glob("trace-*.npz")) + sorted(cdir.glob("sweeps-*.npz"))
    if not archives:
        return None
    target = archives[seed % len(archives)]
    data = bytearray(target.read_bytes())
    if not data:
        return None
    index = (seed * 2654435761 + len(data) // 2) % len(data)
    data[index] ^= 0xFF
    target.write_bytes(bytes(data))
    return str(target)
