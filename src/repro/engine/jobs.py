"""The job model: what a supervised worker executes.

A job is a *name*, not a closure: :class:`JobSpec` carries a job
``kind`` (a key into :data:`JOB_KINDS`) plus a JSON-serializable
``params`` mapping, so the same spec can be shipped to a worker
process, checkpointed to the run ledger, and re-run bit-for-bit on
resume.  Heavy imports happen inside the kind functions — the registry
itself is import-light so worker startup stays cheap.

Built-in kinds
--------------

``warm``
    Build one workload's trace/sweep artifacts into the persistent
    disk cache (:func:`repro.experiments.runner.artifacts_for`).

``table``
    Render one paper table or ablation; the payload carries the full
    text, which is what makes resumed sweeps byte-identical.

``oracle``
    Run one batch of differential-oracle seeds
    (:func:`repro.oracle.verify`) and report divergences.

``selftest``
    Deterministic arithmetic (optionally slow or failing) — the kind
    the engine's own tests and chaos checks run, so they never pay for
    real trace generation.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

__all__ = [
    "JOB_KINDS",
    "TABLE_RENDERERS",
    "JobSpec",
    "params_fingerprint",
    "run_job",
]


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of a sweep.

    ``id`` must be unique within a run; ``deps`` name jobs that must
    complete first.  ``timeout``/``max_retries`` override the engine
    defaults for this job only (``None`` means inherit).  ``priority``
    orders ready-job launches (higher first; ties keep submission
    order) without affecting the fingerprint — the same work submitted
    at a different priority still resumes from its checkpoint.
    """

    id: str
    kind: str
    params: Mapping[str, object] = field(default_factory=dict)
    deps: Tuple[str, ...] = ()
    timeout: Optional[float] = None
    max_retries: Optional[int] = None
    priority: int = 0

    def fingerprint(self) -> str:
        """Content hash of what determines the job's result — resume
        only reuses a ledger entry whose fingerprint still matches."""
        return params_fingerprint(self.kind, self.params)


def params_fingerprint(kind: str, params: Mapping[str, object]) -> str:
    payload = json.dumps({"kind": kind, "params": dict(params)}, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


# -- job kinds -----------------------------------------------------------------


#: table/ablation name -> (module, callable) rendering it; shared by the
#: ``table`` CLI subcommand and the engine's ``table`` job kind.
TABLE_RENDERERS: Dict[str, Tuple[str, str]] = {
    "1": ("repro.experiments.table1", "render_table1"),
    "2": ("repro.experiments.table2", "render_table2"),
    "3": ("repro.experiments.table3", "render_table3"),
    "4": ("repro.experiments.table4", "render_table4"),
    "zoo": ("repro.experiments.ablations", "render_policy_zoo"),
    "locks": ("repro.experiments.ablations", "render_lock_ablation"),
    "sizing": ("repro.experiments.ablations", "render_sizing_ablation"),
    "wsfamily": ("repro.experiments.ablations", "render_ws_family"),
    "adaptive": ("repro.experiments.ablations", "render_adaptive_study"),
    "geometry": ("repro.experiments.geometry", "render_geometry"),
    "multiprog": ("repro.experiments.multiprog_study", "render_multiprog"),
    "loadctl": ("repro.experiments.load_control", "render_load_control"),
    "control": ("repro.experiments.controllability", "render_controllability"),
}


def render_table(which: str) -> str:
    """Render one table/ablation by name (raises KeyError on unknown)."""
    import importlib

    module_name, func_name = TABLE_RENDERERS[which]
    module = importlib.import_module(module_name)
    return getattr(module, func_name)()


def _run_warm(params: Mapping[str, object]) -> dict:
    from repro.analysis.locality import SizingStrategy
    from repro.analysis.parameters import PageConfig
    from repro.experiments.runner import artifacts_for

    artifacts = artifacts_for(
        str(params["workload"]),
        page_config=PageConfig(
            page_bytes=int(params.get("page_bytes", PageConfig().page_bytes)),
            word_bytes=int(params.get("word_bytes", PageConfig().word_bytes)),
        ),
        strategy=SizingStrategy(
            params.get("strategy", SizingStrategy.ACTIVE_PAGE.value)
        ),
        with_locks=bool(params.get("with_locks", False)),
    )
    return {
        "workload": artifacts.name,
        "references": int(len(artifacts.trace.pages)),
    }


def _run_table(params: Mapping[str, object]) -> dict:
    which = str(params["which"])
    if which not in TABLE_RENDERERS:
        raise ValueError(f"unknown table {which!r}")
    return {"which": which, "text": render_table(which)}


def _run_oracle(params: Mapping[str, object]) -> dict:
    from repro.oracle import verify

    report = verify(
        seeds=int(params.get("seeds", 25)),
        start_seed=int(params.get("start_seed", 0)),
        shrink=bool(params.get("shrink", False)),
        deep=bool(params.get("deep", True)),
    )
    return {
        "start_seed": int(params.get("start_seed", 0)),
        "seeds_run": report.seeds_run,
        "failures": [
            {"seed": f.seed, "check": f.check, "detail": f.detail}
            for f in report.failures
        ],
    }


def _run_selftest(params: Mapping[str, object]) -> dict:
    value = int(params.get("value", 0))
    sleep = float(params.get("sleep", 0.0))
    if sleep:
        time.sleep(sleep)
    if params.get("fail"):
        raise RuntimeError(f"selftest job asked to fail (value={value})")
    return {"value": value, "square": value * value}


JOB_KINDS: Dict[str, Callable[[Mapping[str, object]], dict]] = {
    "warm": _run_warm,
    "table": _run_table,
    "oracle": _run_oracle,
    "selftest": _run_selftest,
}


def run_job(kind: str, params: Mapping[str, object]) -> dict:
    """Execute one job in the current process; the worker entry point."""
    try:
        fn = JOB_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown job kind {kind!r}") from None
    return fn(params)
