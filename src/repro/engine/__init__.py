"""Resilient sweep engine: supervised workers, checkpoint/resume, chaos.

The paper's evaluation is a large grid — nine workloads x policies x
geometries x sizing strategies — and a production-scale reproduction
has to survive a worker that crashes, hangs, or gets OOM-killed halfway
through.  This package runs experiment sweeps as a DAG of retryable
jobs:

* :mod:`repro.engine.jobs` — the job model and the job-kind registry
  (``warm``, ``table``, ``oracle``, ``selftest``);
* :mod:`repro.engine.supervisor` — the engine: per-attempt worker
  processes, timeouts, bounded retries with backoff + jitter, crash
  isolation, lifecycle events through :mod:`repro.obs`;
* :mod:`repro.engine.ledger` — the JSONL run ledger under
  ``results/runs/<run-id>/``, giving exact checkpoint/resume;
* :mod:`repro.engine.chaos` — deterministic fault injection
  (kill-worker, inject-exception, slow-job, corrupt-cache-entry);
* :mod:`repro.engine.sweeps` — target expansion and the ``repro run``
  entry point.
"""

from repro.engine.chaos import CHAOS_MODES, ChaosError, ChaosPlan
from repro.engine.jobs import JOB_KINDS, JobSpec, render_table, run_job
from repro.engine.ledger import LedgerState, RunLedger
from repro.engine.supervisor import (
    Engine,
    EngineConfig,
    GracefulExit,
    RunReport,
    Wakeup,
    with_priority,
)
from repro.engine.sweeps import SweepResult, build_sweep, new_run_id, run_sweep

__all__ = [
    "CHAOS_MODES",
    "ChaosError",
    "ChaosPlan",
    "Engine",
    "EngineConfig",
    "GracefulExit",
    "JOB_KINDS",
    "JobSpec",
    "LedgerState",
    "RunLedger",
    "RunReport",
    "SweepResult",
    "Wakeup",
    "build_sweep",
    "new_run_id",
    "render_table",
    "run_job",
    "run_sweep",
    "with_priority",
]
