"""The supervised job engine: crash-isolated workers with retries.

Each job attempt runs in its *own* worker process with a dedicated
result pipe — unlike a shared ``ProcessPoolExecutor``, a worker that
raises, hangs past its timeout, or dies to SIGKILL takes down exactly
one attempt of one job.  The supervisor:

* schedules a DAG of :class:`~repro.engine.jobs.JobSpec` (a job launches
  only after every dependency's payload exists);
* retries failures with exponential backoff plus deterministic jitter,
  up to ``max_retries`` extra attempts per job;
* kills attempts that outlive their timeout;
* checkpoints every settled job to a :class:`~repro.engine.ledger.RunLedger`
  so an interrupted run resumes exactly where it stopped;
* narrates everything (JobStart/JobRetry/JobFail/JobDone plus worker
  heartbeats) through an :class:`~repro.obs.Tracer`.

On Ctrl-C the engine kills its workers, records the interruption in
the ledger, flushes, and re-raises — the CLI maps that to exit 130.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.engine.chaos import ChaosPlan, apply_in_worker, corrupt_one_cache_entry
from repro.engine.jobs import JobSpec, run_job
from repro.engine.ledger import LedgerState, RunLedger
from repro.obs.events import JobDone, JobFail, JobRetry, JobStart, WorkerHeartbeat

__all__ = ["Engine", "EngineConfig", "RunReport"]

#: scheduler poll granularity (seconds); bounds shutdown/timeout latency
_POLL_INTERVAL = 0.02


def _mp_context():
    """Fork when the platform has it (cheap workers, and state patched
    into the parent — tests poison workloads this way — is inherited);
    the default start method elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _worker_main(conn, kind: str, params: dict, chaos_action) -> None:
    """Child-process entry: run one job attempt, send one message."""
    try:
        apply_in_worker(chaos_action)  # may SIGKILL us, raise, or sleep
        payload = run_job(kind, params)
        message = ("done", payload)
    except BaseException as err:
        message = ("error", f"{type(err).__name__}: {err}")
    try:
        conn.send(message)
    finally:
        conn.close()


@dataclass
class EngineConfig:
    """Supervision parameters (per-job overrides live on the spec)."""

    max_workers: int = 1
    max_retries: int = 2  # extra attempts after the first
    timeout: Optional[float] = None  # seconds per attempt (None: unlimited)
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    heartbeat_interval: float = 1.0
    chaos: Optional[ChaosPlan] = None
    seed: str = "run"  # jitter/chaos determinism scope


@dataclass
class RunReport:
    """What the engine did with one batch of jobs."""

    results: Dict[str, dict] = field(default_factory=dict)
    failed: Dict[str, str] = field(default_factory=dict)
    attempts: Dict[str, int] = field(default_factory=dict)
    resumed: int = 0
    retries: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        done = len(self.results)
        state = "OK" if self.ok else f"{len(self.failed)} FAILED"
        resumed = f" ({self.resumed} from ledger)" if self.resumed else ""
        retries = f", {self.retries} retried" if self.retries else ""
        return (
            f"engine: {done} job(s) done{resumed}{retries} "
            f"in {self.elapsed:.1f}s — {state}"
        )


class _Worker:
    """One live attempt: the process, its pipe, and its clock."""

    def __init__(self, spec: JobSpec, attempt: int, proc, conn, timeout):
        self.spec = spec
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.started = time.monotonic()
        self.deadline = None if timeout is None else self.started + timeout
        self.last_beat = self.started


class Engine:
    """Run a DAG of jobs under supervision.  Reusable across runs."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        tracer=None,
        ledger: Optional[RunLedger] = None,
    ):
        self.config = config or EngineConfig()
        self.tracer = tracer
        self.ledger = ledger
        self._seq = 0
        self._chaos_uses = 0
        self._ctx = _mp_context()

    # -- event plumbing --------------------------------------------------------

    def _emit(self, event_cls, **fields) -> None:
        if self.tracer is None:
            return
        self._seq += 1
        self.tracer.emit(event_cls(time=self._seq, **fields))

    # -- validation ------------------------------------------------------------

    @staticmethod
    def _validate(specs: Sequence[JobSpec]) -> None:
        ids = [s.id for s in specs]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate job ids: {', '.join(dupes)}")
        known = set(ids)
        for spec in specs:
            for dep in spec.deps:
                if dep not in known:
                    raise ValueError(f"job {spec.id!r} depends on unknown {dep!r}")
        # Kahn's algorithm: everything must be reachable from the roots.
        remaining = {s.id: set(s.deps) for s in specs}
        while True:
            ready = [i for i, deps in remaining.items() if not deps]
            if not ready:
                break
            for i in ready:
                del remaining[i]
            for deps in remaining.values():
                deps.difference_update(ready)
        if remaining:
            raise ValueError(
                f"dependency cycle among: {', '.join(sorted(remaining))}"
            )

    # -- the run loop ----------------------------------------------------------

    def run(
        self,
        specs: Sequence[JobSpec],
        resume: Optional[LedgerState] = None,
    ) -> RunReport:
        self._validate(specs)
        config = self.config
        report = RunReport()
        pending: Dict[str, JobSpec] = {s.id: s for s in specs}
        order: List[str] = [s.id for s in specs]  # stable launch order
        live: Dict[str, _Worker] = {}
        next_eligible: Dict[str, float] = {}
        t0 = time.monotonic()

        if resume is not None:
            for spec in specs:
                payload = resume.payload_for(spec.id, spec.fingerprint())
                if payload is not None:
                    report.results[spec.id] = payload
                    report.attempts[spec.id] = 0
                    del pending[spec.id]
                    report.resumed += 1
                    self._emit(JobDone, job=spec.id, attempts=0, seconds=0.0)

        def retries_for(spec: JobSpec) -> int:
            return (
                config.max_retries
                if spec.max_retries is None
                else spec.max_retries
            )

        def timeout_for(spec: JobSpec) -> Optional[float]:
            return config.timeout if spec.timeout is None else spec.timeout

        def backoff_for(spec: JobSpec, attempt: int) -> float:
            raw = min(
                config.backoff_cap, config.backoff_base * (2 ** (attempt - 1))
            )
            rng = random.Random(f"{config.seed}:{spec.id}:{attempt}")
            return raw * (0.5 + rng.random())

        def fail_job(spec: JobSpec, attempts: int, error: str) -> None:
            report.failed[spec.id] = error
            report.attempts[spec.id] = attempts
            pending.pop(spec.id, None)
            self._emit(JobFail, job=spec.id, attempts=attempts, error=error)
            if self.ledger is not None:
                self.ledger.job_fail(spec.id, attempts, error)
            # Cascade: dependents can never run now.
            for other_id in list(pending):
                other = pending.get(other_id)
                if (
                    other is not None
                    and other_id not in live
                    and spec.id in other.deps
                ):
                    fail_job(other, 0, f"dependency {spec.id!r} failed")

        def finish_job(worker: _Worker, payload: dict) -> None:
            spec = worker.spec
            seconds = time.monotonic() - worker.started
            report.results[spec.id] = payload
            report.attempts[spec.id] = worker.attempt
            pending.pop(spec.id, None)
            self._emit(
                JobDone,
                job=spec.id,
                attempts=worker.attempt,
                seconds=round(seconds, 6),
            )
            if self.ledger is not None:
                self.ledger.job_done(
                    spec.id, spec.fingerprint(), worker.attempt, payload
                )

        def attempt_failed(worker: _Worker, error: str) -> None:
            spec = worker.spec
            if worker.attempt <= retries_for(spec):
                backoff = backoff_for(spec, worker.attempt)
                next_eligible[spec.id] = time.monotonic() + backoff
                report.retries += 1
                self._emit(
                    JobRetry,
                    job=spec.id,
                    attempt=worker.attempt,
                    error=error,
                    backoff=round(backoff, 6),
                )
            else:
                fail_job(spec, worker.attempt, error)

        def launch(spec: JobSpec) -> None:
            attempt = report.attempts.get(spec.id, 0) + 1
            report.attempts[spec.id] = attempt
            chaos_action = None
            chaos = config.chaos
            if chaos is not None and chaos.applies(spec.id, attempt):
                chaos.record(spec.id)
                if chaos.mode == "corrupt-cache-entry":
                    corrupt_one_cache_entry(seed=self._chaos_uses)
                    self._chaos_uses += 1
                else:
                    chaos_action = chaos.worker_action()
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, spec.kind, dict(spec.params), chaos_action),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            live[spec.id] = _Worker(
                spec, attempt, proc, parent_conn, timeout_for(spec)
            )
            self._emit(
                JobStart, job=spec.id, attempt=attempt, worker=proc.pid or 0
            )

        def reap(worker: _Worker) -> None:
            if worker.proc.is_alive():
                worker.proc.kill()
            worker.proc.join()
            worker.conn.close()

        try:
            while pending or live:
                now = time.monotonic()
                # Launch everything launchable, in submission order.
                for job_id in order:
                    if len(live) >= config.max_workers:
                        break
                    spec = pending.get(job_id)
                    if spec is None or job_id in live:
                        continue
                    if any(dep not in report.results for dep in spec.deps):
                        continue
                    if now < next_eligible.get(job_id, 0.0):
                        continue
                    launch(spec)
                if not live:
                    # Everything pending is waiting out a backoff.
                    time.sleep(_POLL_INTERVAL)
                    continue
                time.sleep(_POLL_INTERVAL)
                now = time.monotonic()
                for job_id, worker in list(live.items()):
                    message = None
                    if worker.conn.poll():
                        try:
                            message = worker.conn.recv()
                        except (EOFError, OSError):
                            message = None
                    if message is not None:
                        del live[job_id]
                        reap(worker)
                        status, value = message
                        if status == "done":
                            finish_job(worker, value)
                        else:
                            attempt_failed(worker, str(value))
                        continue
                    if not worker.proc.is_alive():
                        # Died without a message: crash or SIGKILL.
                        del live[job_id]
                        code = worker.proc.exitcode
                        reap(worker)
                        detail = (
                            f"killed by signal {-code}"
                            if code is not None and code < 0
                            else f"exit code {code}"
                        )
                        attempt_failed(worker, f"worker died ({detail})")
                        continue
                    if worker.deadline is not None and now > worker.deadline:
                        del live[job_id]
                        reap(worker)
                        timeout = timeout_for(worker.spec)
                        attempt_failed(
                            worker, f"timeout after {timeout:g}s"
                        )
                        continue
                    if now - worker.last_beat >= config.heartbeat_interval:
                        worker.last_beat = now
                        self._emit(
                            WorkerHeartbeat,
                            worker=worker.proc.pid or 0,
                            job=job_id,
                        )
        except KeyboardInterrupt:
            for worker in live.values():
                reap(worker)
            if self.ledger is not None:
                self.ledger.append(
                    {"kind": "interrupt", "live": sorted(live)}
                )
                self.ledger.close()
            raise
        report.elapsed = time.monotonic() - t0
        return report
