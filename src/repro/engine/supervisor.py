"""The supervised job engine: crash-isolated workers with retries.

Each job attempt runs in its *own* worker process with a dedicated
result pipe — unlike a shared ``ProcessPoolExecutor``, a worker that
raises, hangs past its timeout, or dies to SIGKILL takes down exactly
one attempt of one job.  The supervisor:

* schedules a DAG of :class:`~repro.engine.jobs.JobSpec` (a job launches
  only after every dependency's payload exists), launching ready jobs
  highest ``priority`` first (ties broken by submission order);
* retries failures with exponential backoff plus deterministic jitter,
  up to ``max_retries`` extra attempts per job;
* kills attempts that outlive their timeout;
* checkpoints every settled job to a :class:`~repro.engine.ledger.RunLedger`
  so an interrupted run resumes exactly where it stopped;
* narrates everything (JobStart/JobRetry/JobFail/JobDone plus worker
  heartbeats) through an :class:`~repro.obs.Tracer`.

The scheduler loop does not poll: it blocks in
:func:`multiprocessing.connection.wait` on the live worker pipes (and
an optional :class:`Wakeup` channel), with the timeout bounded by the
nearest real deadline — a worker timeout, a heartbeat, or a backoff
expiry.  An idle engine therefore wakes at most a couple of times per
second instead of burning a 20 ms busy-poll.

``run`` can also *serve*: given an ``intake`` callable it keeps running
after the initial specs settle, admitting externally submitted jobs as
they arrive (the ``repro serve`` daemon feeds it through a thread-safe
queue plus a :class:`Wakeup` pipe).  A spec resubmitted with an id and
fingerprint that already completed replays its payload instantly — the
scheduler-level warm-cache hit overlapping service submissions rely on.

On Ctrl-C *or SIGTERM* the engine kills its workers, records the
interruption (and which signal caused it) in the ledger, flushes, and
re-raises — the CLI maps SIGINT to exit 130 and SIGTERM to exit 143.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.engine.chaos import ChaosPlan, apply_in_worker, corrupt_one_cache_entry
from repro.engine.jobs import JobSpec, run_job
from repro.engine.ledger import LedgerState, RunLedger
from repro.obs.events import JobDone, JobFail, JobRetry, JobStart, WorkerHeartbeat

__all__ = [
    "Engine",
    "EngineConfig",
    "GracefulExit",
    "RunReport",
    "Wakeup",
    "with_priority",
]

#: upper bound on one blocking wait (seconds); an *idle* serving engine
#: wakes at most this often, so "no more than a handful per second"
_MAX_WAIT = 0.5


class GracefulExit(BaseException):
    """Raised inside :meth:`Engine.run` when SIGTERM arrives.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so no
    intermediate ``except Exception`` can swallow a shutdown request.
    The CLI maps it to the conventional exit code 128+SIGTERM = 143.
    """

    exit_code = 143


class Wakeup:
    """A self-pipe another thread can poke to wake the engine loop.

    The read end participates in :func:`multiprocessing.connection.wait`
    alongside the worker pipes, so a submission, cancellation, or drain
    request interrupts an idle engine immediately instead of waiting
    out the current timeout.
    """

    def __init__(self) -> None:
        self._read_fd, self._write_fd = os.pipe()
        os.set_blocking(self._read_fd, False)

    def fileno(self) -> int:
        return self._read_fd

    def set(self) -> None:
        """Poke the engine (safe from any thread or signal handler)."""
        try:
            os.write(self._write_fd, b"x")
        except OSError:  # pragma: no cover - pipe full or closed: moot
            pass

    def clear(self) -> None:
        """Drain pending pokes (called by the engine after waking)."""
        try:
            while os.read(self._read_fd, 4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def close(self) -> None:
        for fd in (self._read_fd, self._write_fd):
            try:
                os.close(fd)
            except OSError:
                pass


def _mp_context():
    """Fork when the platform has it (cheap workers, and state patched
    into the parent — tests poison workloads this way — is inherited);
    the default start method elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _worker_main(conn, kind: str, params: dict, chaos_action) -> None:
    """Child-process entry: run one job attempt, send one message."""
    try:
        apply_in_worker(chaos_action)  # may SIGKILL us, raise, or sleep
        payload = run_job(kind, params)
        message = ("done", payload)
    except BaseException as err:
        message = ("error", f"{type(err).__name__}: {err}")
    try:
        conn.send(message)
    finally:
        conn.close()


@dataclass
class EngineConfig:
    """Supervision parameters (per-job overrides live on the spec)."""

    max_workers: int = 1
    max_retries: int = 2  # extra attempts after the first
    timeout: Optional[float] = None  # seconds per attempt (None: unlimited)
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    heartbeat_interval: float = 1.0
    chaos: Optional[ChaosPlan] = None
    seed: str = "run"  # jitter/chaos determinism scope
    #: install a SIGTERM handler for the duration of ``run`` (the serve
    #: daemon sets this False and installs its own drain handler)
    install_sigterm: bool = True


@dataclass
class RunReport:
    """What the engine did with one batch of jobs."""

    results: Dict[str, dict] = field(default_factory=dict)
    failed: Dict[str, str] = field(default_factory=dict)
    attempts: Dict[str, int] = field(default_factory=dict)
    resumed: int = 0
    retries: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        done = len(self.results)
        state = "OK" if self.ok else f"{len(self.failed)} FAILED"
        resumed = f" ({self.resumed} from ledger)" if self.resumed else ""
        retries = f", {self.retries} retried" if self.retries else ""
        return (
            f"engine: {done} job(s) done{resumed}{retries} "
            f"in {self.elapsed:.1f}s — {state}"
        )


class _Worker:
    """One live attempt: the process, its pipe, and its clock."""

    def __init__(self, spec: JobSpec, attempt: int, proc, conn, timeout):
        self.spec = spec
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.started = time.monotonic()
        self.deadline = None if timeout is None else self.started + timeout
        self.last_beat = self.started


class Engine:
    """Run a DAG of jobs under supervision.  Reusable across runs."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        tracer=None,
        ledger: Optional[RunLedger] = None,
    ):
        self.config = config or EngineConfig()
        self.tracer = tracer
        self.ledger = ledger
        self._seq = 0
        self._chaos_uses = 0
        self._ctx = _mp_context()
        #: scheduler loop iterations in the most recent ``run`` — the
        #: idle-CPU regression test pins this to "a handful per second"
        self.wakeups = 0

    # -- event plumbing --------------------------------------------------------

    def _emit(self, event_cls, **fields) -> None:
        if self.tracer is None:
            return
        self._seq += 1
        self.tracer.emit(event_cls(time=self._seq, **fields))

    # -- validation ------------------------------------------------------------

    @staticmethod
    def _validate(specs: Sequence[JobSpec]) -> None:
        ids = [s.id for s in specs]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate job ids: {', '.join(dupes)}")
        known = set(ids)
        for spec in specs:
            for dep in spec.deps:
                if dep not in known:
                    raise ValueError(f"job {spec.id!r} depends on unknown {dep!r}")
        # Kahn's algorithm: everything must be reachable from the roots.
        remaining = {s.id: set(s.deps) for s in specs}
        while True:
            ready = [i for i, deps in remaining.items() if not deps]
            if not ready:
                break
            for i in ready:
                del remaining[i]
            for deps in remaining.values():
                deps.difference_update(ready)
        if remaining:
            raise ValueError(
                f"dependency cycle among: {', '.join(sorted(remaining))}"
            )

    # -- the run loop ----------------------------------------------------------

    def run(
        self,
        specs: Sequence[JobSpec],
        resume: Optional[LedgerState] = None,
        *,
        intake: Optional[Callable[[], Iterable[JobSpec]]] = None,
        cancels: Optional[Callable[[], Iterable[str]]] = None,
        stop: Optional[Callable[[], bool]] = None,
        wakeup: Optional[Wakeup] = None,
    ) -> RunReport:
        """Supervise ``specs`` (and, when serving, whatever ``intake``
        delivers later) until everything settles.

        ``intake`` turns the call into a long-running service loop: the
        engine stays alive when idle and admits the specs the callable
        returns each iteration.  ``cancels`` yields job ids to abort
        (pending jobs are dropped, live attempts killed).  ``stop``
        requests a graceful drain: no new launches, return once live
        attempts settle.  ``wakeup`` is waited on alongside the worker
        pipes so another thread can interrupt an idle engine.
        """
        self._validate(specs)
        config = self.config
        report = RunReport()
        self.wakeups = 0
        pending: Dict[str, JobSpec] = {s.id: s for s in specs}
        submit_seq: Dict[str, int] = {s.id: i for i, s in enumerate(specs)}
        known: Dict[str, JobSpec] = dict(pending)
        fingerprints: Dict[str, str] = {}
        live: Dict[str, _Worker] = {}
        next_eligible: Dict[str, float] = {}
        serving = intake is not None
        interrupted_by: Optional[str] = None
        t0 = time.monotonic()

        def settle_from_ledger(spec: JobSpec) -> bool:
            if resume is None:
                return False
            payload = resume.payload_for(spec.id, spec.fingerprint())
            if payload is None:
                return False
            report.results[spec.id] = payload
            report.attempts[spec.id] = 0
            fingerprints[spec.id] = spec.fingerprint()
            pending.pop(spec.id, None)
            report.resumed += 1
            self._emit(JobDone, job=spec.id, attempts=0, seconds=0.0)
            return True

        for spec in specs:
            settle_from_ledger(spec)

        def admit(spec: JobSpec) -> None:
            """Admit one externally submitted spec into the DAG.

            A spec whose id already completed with the same fingerprint
            replays instantly (the scheduler-level warm-cache hit); the
            same id with *different* params is rejected as a conflict.
            A previously failed id is given a fresh chance.
            """
            existing = known.get(spec.id)
            if existing is not None:
                if existing.fingerprint() != spec.fingerprint():
                    report.failed[spec.id] = (
                        "job id conflict: resubmitted with different params"
                    )
                    self._emit(
                        JobFail,
                        job=spec.id,
                        attempts=0,
                        error=report.failed[spec.id],
                    )
                    return
                if spec.id in report.results:
                    # Identical job already done: replay, don't re-run.
                    report.resumed += 1
                    self._emit(JobDone, job=spec.id, attempts=0, seconds=0.0)
                    return
                if spec.id in pending or spec.id in live:
                    return  # already queued: the new submission shares it
                # Previously failed (or cancelled): retry from scratch.
                report.failed.pop(spec.id, None)
            unknown = [d for d in spec.deps if d not in known and d != spec.id]
            if unknown or spec.id in spec.deps:
                report.failed[spec.id] = (
                    f"invalid submission: unknown dependencies {unknown}"
                    if unknown
                    else "invalid submission: depends on itself"
                )
                self._emit(
                    JobFail, job=spec.id, attempts=0, error=report.failed[spec.id]
                )
                return
            failed_deps = [d for d in spec.deps if d in report.failed]
            known[spec.id] = spec
            submit_seq.setdefault(spec.id, len(submit_seq))
            if failed_deps:
                fail_job(spec, 0, f"dependency {failed_deps[0]!r} failed")
                return
            pending[spec.id] = spec
            report.attempts.pop(spec.id, None)
            if settle_from_ledger(spec):
                return

        def retries_for(spec: JobSpec) -> int:
            return (
                config.max_retries
                if spec.max_retries is None
                else spec.max_retries
            )

        def timeout_for(spec: JobSpec) -> Optional[float]:
            return config.timeout if spec.timeout is None else spec.timeout

        def backoff_for(spec: JobSpec, attempt: int) -> float:
            raw = min(
                config.backoff_cap, config.backoff_base * (2 ** (attempt - 1))
            )
            rng = random.Random(f"{config.seed}:{spec.id}:{attempt}")
            return raw * (0.5 + rng.random())

        def fail_job(spec: JobSpec, attempts: int, error: str) -> None:
            report.failed[spec.id] = error
            report.attempts[spec.id] = attempts
            pending.pop(spec.id, None)
            # Ledger before event: an observer that reacts to JobFail
            # (the serve daemon's settlement sink) must find the record
            # already durable.
            if self.ledger is not None:
                self.ledger.job_fail(spec.id, attempts, error)
            self._emit(JobFail, job=spec.id, attempts=attempts, error=error)
            # Cascade: dependents can never run now.
            for other_id in list(pending):
                other = pending.get(other_id)
                if (
                    other is not None
                    and other_id not in live
                    and spec.id in other.deps
                ):
                    fail_job(other, 0, f"dependency {spec.id!r} failed")

        def cancel_job(job_id: str) -> None:
            worker = live.pop(job_id, None)
            if worker is not None:
                reap(worker)
                fail_job(worker.spec, worker.attempt, "cancelled")
                return
            spec = pending.get(job_id)
            if spec is not None:
                next_eligible.pop(job_id, None)
                fail_job(spec, report.attempts.get(job_id, 0), "cancelled")

        def finish_job(worker: _Worker, payload: dict) -> None:
            spec = worker.spec
            seconds = time.monotonic() - worker.started
            report.results[spec.id] = payload
            report.attempts[spec.id] = worker.attempt
            fingerprints[spec.id] = spec.fingerprint()
            pending.pop(spec.id, None)
            # Ledger before event: JobDone is the commit signal for
            # observers (watchers, the daemon), so the payload must be
            # stored by the time they see it.
            if self.ledger is not None:
                self.ledger.job_done(
                    spec.id, spec.fingerprint(), worker.attempt, payload
                )
            self._emit(
                JobDone,
                job=spec.id,
                attempts=worker.attempt,
                seconds=round(seconds, 6),
            )

        def attempt_failed(worker: _Worker, error: str) -> None:
            spec = worker.spec
            if worker.attempt <= retries_for(spec):
                backoff = backoff_for(spec, worker.attempt)
                next_eligible[spec.id] = time.monotonic() + backoff
                report.retries += 1
                self._emit(
                    JobRetry,
                    job=spec.id,
                    attempt=worker.attempt,
                    error=error,
                    backoff=round(backoff, 6),
                )
            else:
                fail_job(spec, worker.attempt, error)

        def launch(spec: JobSpec) -> None:
            next_eligible.pop(spec.id, None)
            attempt = report.attempts.get(spec.id, 0) + 1
            report.attempts[spec.id] = attempt
            chaos_action = None
            chaos = config.chaos
            if chaos is not None and chaos.applies(spec.id, attempt):
                chaos.record(spec.id)
                if chaos.mode == "corrupt-cache-entry":
                    corrupt_one_cache_entry(seed=self._chaos_uses)
                    self._chaos_uses += 1
                else:
                    chaos_action = chaos.worker_action()
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, spec.kind, dict(spec.params), chaos_action),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            live[spec.id] = _Worker(
                spec, attempt, proc, parent_conn, timeout_for(spec)
            )
            self._emit(
                JobStart, job=spec.id, attempt=attempt, worker=proc.pid or 0
            )

        def reap(worker: _Worker) -> None:
            if worker.proc.is_alive():
                worker.proc.kill()
            worker.proc.join()
            worker.conn.close()

        def wait_timeout(now: float, draining: bool) -> Optional[float]:
            """Seconds until the nearest deadline the loop must act on.

            Worker timeouts and heartbeat emissions always count; a
            backoff expiry only counts while a worker slot is free
            (otherwise the launch it would enable cannot happen until a
            pipe becomes readable anyway, which wakes us by itself).
            """
            deadlines: List[float] = []
            for worker in live.values():
                if worker.deadline is not None:
                    deadlines.append(worker.deadline)
                deadlines.append(worker.last_beat + config.heartbeat_interval)
            if not draining and len(live) < config.max_workers:
                for job_id, eligible in next_eligible.items():
                    if job_id in pending and job_id not in live:
                        deadlines.append(eligible)
            if not deadlines:
                return _MAX_WAIT
            return max(0.0, min(min(deadlines) - now, _MAX_WAIT))

        previous_sigterm = None
        sigterm_installed = False
        if (
            config.install_sigterm
            and threading.current_thread() is threading.main_thread()
        ):

            def _on_sigterm(_signum, _frame):
                raise GracefulExit()

            try:
                previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
                sigterm_installed = True
            except ValueError:  # pragma: no cover - exotic embedding
                pass

        try:
            while True:
                self.wakeups += 1
                if intake is not None:
                    for spec in intake():
                        admit(spec)
                if cancels is not None:
                    for job_id in cancels():
                        cancel_job(job_id)
                draining = bool(stop is not None and stop())
                if draining and not live:
                    break
                if not serving and not pending and not live:
                    break
                now = time.monotonic()
                if not draining:
                    # Launch everything launchable: highest priority
                    # first, submission order within a priority.
                    ready = sorted(
                        pending.values(),
                        key=lambda s: (-s.priority, submit_seq[s.id]),
                    )
                    for spec in ready:
                        if len(live) >= config.max_workers:
                            break
                        if spec.id in live:
                            continue
                        if any(dep not in report.results for dep in spec.deps):
                            continue
                        if now < next_eligible.get(spec.id, 0.0):
                            continue
                        launch(spec)
                now = time.monotonic()
                waitables: List[object] = [w.conn for w in live.values()]
                if wakeup is not None:
                    waitables.append(wakeup)
                timeout = wait_timeout(now, draining)
                if waitables:
                    multiprocessing.connection.wait(waitables, timeout=timeout)
                elif timeout and timeout > 0:
                    time.sleep(timeout)
                if wakeup is not None:
                    wakeup.clear()
                now = time.monotonic()
                for job_id, worker in list(live.items()):
                    message = None
                    if worker.conn.poll():
                        try:
                            message = worker.conn.recv()
                        except (EOFError, OSError):
                            message = None
                    if message is not None:
                        del live[job_id]
                        reap(worker)
                        status, value = message
                        if status == "done":
                            finish_job(worker, value)
                        else:
                            attempt_failed(worker, str(value))
                        continue
                    if not worker.proc.is_alive():
                        # Died without a message: crash or SIGKILL.
                        del live[job_id]
                        code = worker.proc.exitcode
                        reap(worker)
                        detail = (
                            f"killed by signal {-code}"
                            if code is not None and code < 0
                            else f"exit code {code}"
                        )
                        attempt_failed(worker, f"worker died ({detail})")
                        continue
                    if worker.deadline is not None and now > worker.deadline:
                        del live[job_id]
                        reap(worker)
                        timeout = timeout_for(worker.spec)
                        attempt_failed(
                            worker, f"timeout after {timeout:g}s"
                        )
                        continue
                    if now - worker.last_beat >= config.heartbeat_interval:
                        worker.last_beat = now
                        self._emit(
                            WorkerHeartbeat,
                            worker=worker.proc.pid or 0,
                            job=job_id,
                        )
        except (KeyboardInterrupt, GracefulExit) as err:
            # SIGINT and SIGTERM share one shutdown path: kill workers,
            # record the interruption, flush the ledger, re-raise (the
            # CLI maps them to exit 130 / 143).
            interrupted_by = (
                "SIGTERM" if isinstance(err, GracefulExit) else "SIGINT"
            )
            for worker in live.values():
                reap(worker)
            if self.ledger is not None:
                self.ledger.append(
                    {
                        "kind": "interrupt",
                        "signal": interrupted_by,
                        "live": sorted(live),
                    }
                )
                self.ledger.close()
            raise
        finally:
            if sigterm_installed:
                signal.signal(
                    signal.SIGTERM,
                    signal.SIG_DFL if previous_sigterm is None else previous_sigterm,
                )
        report.elapsed = time.monotonic() - t0
        return report


def with_priority(spec: JobSpec, priority: int) -> JobSpec:
    """A copy of ``spec`` scheduled at ``priority`` (fingerprint-neutral)."""
    if spec.priority == priority:
        return spec
    return replace(spec, priority=priority)
