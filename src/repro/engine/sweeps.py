"""Sweep construction: CLI targets -> a job DAG -> run artifacts.

A *target* is what ``repro run`` accepts on the command line:

* a table/ablation name (``1``..``4``, ``zoo``, ``locks``, ``sizing``,
  ``geometry``, ``multiprog``, ``wsfamily``, ``control``, ``adaptive``)
  — expands to one ``warm`` job per (workload, lock-mode) the table
  needs plus one ``table`` job depending on them;
* ``verify[:seeds[:batch]]`` — the differential oracle fanned out as
  independent seed-batch jobs (default 50 seeds in batches of 25).

Each run owns a directory ``<runs-root>/<run-id>/`` holding the
JSONL run ledger (checkpoints), the engine event log, and the rendered
table files.  ``--resume <run-id>`` reloads the ledger and replays
completed jobs as instant results, so an interrupted sweep finishes
with byte-identical outputs.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.jobs import TABLE_RENDERERS, JobSpec
from repro.engine.ledger import LedgerState, RunLedger
from repro.engine.supervisor import Engine, EngineConfig, RunReport

__all__ = ["SweepResult", "build_sweep", "new_run_id", "run_sweep"]

DEFAULT_RUNS_ROOT = Path("results") / "runs"


def new_run_id() -> str:
    return time.strftime("run-%Y%m%d-%H%M%S") + f"-{os.getpid()}"


def _warm_rows(which: str) -> List[Tuple[str, bool]]:
    """The (workload, with_locks) artifact specs one table consumes."""
    from repro.experiments.config import table1_rows, table2_rows

    if which == "1":
        rows = table1_rows()
    elif which in ("2", "3", "4"):
        rows = table2_rows()
    else:
        from repro.workloads import all_workloads

        return [(w.name, False) for w in all_workloads()]
    return list(dict.fromkeys((v.workload, v.with_locks) for v in rows))


def _warm_job_id(workload: str, with_locks: bool) -> str:
    return f"warm:{workload.lower()}" + ("+locks" if with_locks else "")


def build_sweep(targets: Sequence[str]) -> List[JobSpec]:
    """Expand targets into a deduplicated DAG of job specs."""
    specs: List[JobSpec] = []
    seen: Dict[str, JobSpec] = {}

    def add(spec: JobSpec) -> None:
        if spec.id not in seen:
            seen[spec.id] = spec
            specs.append(spec)

    for target in targets:
        if target in TABLE_RENDERERS:
            deps = []
            for workload, with_locks in _warm_rows(target):
                job_id = _warm_job_id(workload, with_locks)
                add(
                    JobSpec(
                        id=job_id,
                        kind="warm",
                        params={"workload": workload, "with_locks": with_locks},
                    )
                )
                deps.append(job_id)
            add(
                JobSpec(
                    id=f"table:{target}",
                    kind="table",
                    params={"which": target},
                    deps=tuple(deps),
                )
            )
        elif target == "verify" or target.startswith("verify:"):
            parts = target.split(":")
            seeds = int(parts[1]) if len(parts) > 1 and parts[1] else 50
            batch = int(parts[2]) if len(parts) > 2 and parts[2] else 25
            if seeds < 1 or batch < 1:
                raise ValueError(f"bad verify target {target!r}")
            for start in range(0, seeds, batch):
                count = min(batch, seeds - start)
                add(
                    JobSpec(
                        id=f"oracle:{start}-{start + count - 1}",
                        kind="oracle",
                        params={"start_seed": start, "seeds": count},
                    )
                )
        else:
            known = ", ".join(sorted(TABLE_RENDERERS))
            raise ValueError(
                f"unknown sweep target {target!r} (tables: {known}; "
                "or verify[:seeds[:batch]])"
            )
    return specs


@dataclass
class SweepResult:
    """One ``repro run`` invocation's outcome."""

    run_id: str
    run_dir: Path
    report: RunReport
    outputs: List[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.report.ok

    def oracle_failures(self) -> List[dict]:
        failures: List[dict] = []
        for job_id, payload in sorted(self.report.results.items()):
            if job_id.startswith("oracle:"):
                failures.extend(payload.get("failures", []))
        return failures


def _output_name(which: str) -> str:
    return f"table{which}.txt" if which.isdigit() else f"{which}.txt"


def run_sweep(
    targets: Sequence[str],
    run_id: Optional[str] = None,
    runs_root: Path = DEFAULT_RUNS_ROOT,
    resume: bool = False,
    config: Optional[EngineConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Build the DAG for ``targets`` and run it under supervision.

    ``resume=True`` reloads ``<runs_root>/<run_id>/ledger.jsonl`` and
    skips completed jobs.  On KeyboardInterrupt the ledger and event
    log are flushed before the exception propagates.
    """
    from repro.obs import JsonlSink, Tracer

    run_id = run_id or new_run_id()
    run_dir = Path(runs_root) / run_id
    run_dir.mkdir(parents=True, exist_ok=True)
    say = progress or (lambda _msg: None)
    specs = build_sweep(targets)
    config = config or EngineConfig()
    config.seed = run_id

    resume_state = None
    if resume:
        resume_state = LedgerState.load(run_dir / "ledger.jsonl")
        say(
            f"resuming {run_id}: {len(resume_state.completed)} job(s) "
            f"checkpointed, {len(resume_state.failed)} previously failed"
        )

    ledger = RunLedger(run_dir / "ledger.jsonl")
    ledger.append(
        {
            "kind": "run-start",
            "run_id": run_id,
            "targets": list(targets),
            "jobs": [s.id for s in specs],
            "max_workers": config.max_workers,
            "max_retries": config.max_retries,
            "timeout": config.timeout,
            "chaos": config.chaos.mode if config.chaos else None,
            "resumed": bool(resume),
        }
    )
    tracer = Tracer(JsonlSink(run_dir / "events.jsonl", append=True))
    engine = Engine(config, tracer=tracer, ledger=ledger)
    say(
        f"{run_id}: {len(specs)} job(s), {config.max_workers} worker(s)"
        + (f", chaos={config.chaos.mode}" if config.chaos else "")
    )
    try:
        report = engine.run(specs, resume=resume_state)
    finally:
        tracer.close()
        ledger.close()

    result = SweepResult(run_id=run_id, run_dir=run_dir, report=report)
    for job_id, payload in sorted(report.results.items()):
        if job_id.startswith("table:"):
            path = run_dir / _output_name(payload["which"])
            path.write_text(payload["text"] + "\n")
            result.outputs.append(path)
            say(f"wrote {path}")
    return result
